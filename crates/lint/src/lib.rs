//! # dilu-lint — the workspace determinism auditor
//!
//! Every guarantee this reproduction sells — byte-identical
//! `ClusterReport` JSON across dense-quantum / serial-event /
//! parallel-event at any thread count — rests on source-level invariants:
//! no unordered map iteration on sim paths, no ambient time or randomness,
//! fixed-order parallel merges, no order-sensitive float folds. The
//! differential fuzzer catches violations *after* a seed happens to trip
//! them; this crate catches them at the source level, in CI, before.
//!
//! It is a hand-rolled, dependency-free token scanner (the vendored-serde
//! precedent: this workspace builds fully offline), not a full parser —
//! the lexer understands strings, comments, lifetimes, and
//! `#[cfg(test)]` regions, which is exactly enough for the rule set:
//!
//! | rule | bans |
//! |------|------|
//! | `no-unordered-iteration` | `HashMap`/`HashSet` on sim/report/controller paths |
//! | `no-ambient-time` | `Instant::now` / `SystemTime` outside wall-clock reporting |
//! | `no-ambient-rng` | `thread_rng` / `from_entropy` / OS-entropy seeding |
//! | `no-unordered-parallel-merge` | completion-order merges in thread-spawning files |
//! | `float-accumulation-order` | `.sum::<f64>()` / `.fold` over hash-container iterators |
//!
//! Scopes and toggles live in the workspace-root `lint.toml`
//! ([`Config`]); `tests/`, `benches/`, `examples/` directories and
//! `#[cfg(test)]` modules are always exempt. A finding is suppressible
//! only by an inline
//!
//! ```text
//! // dilu-lint: allow(<rule>) -- <reason>
//! ```
//!
//! on the offending line or the line above — and the reason is mandatory:
//! an `allow(...)` without one is itself a finding
//! ([`ALLOW_RULE`]), so every suppression in the tree documents why the
//! heuristic is wrong there.
//!
//! The front door is `dilu lint [--json <path>] [--rule <name>]`, which
//! exits non-zero on any finding; [`lint_workspace`] is the library entry
//! and [`lint_source`] the single-file core that the fixture self-tests
//! drive directly.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod config;
mod lexer;
mod rules;

use std::path::Path;

pub use config::{Config, RuleConfig};
pub use rules::{
    find_rule, rule_names, Rule, FLOAT_ACCUMULATION_ORDER, NO_AMBIENT_RNG, NO_AMBIENT_TIME,
    NO_UNORDERED_ITERATION, NO_UNORDERED_PARALLEL_MERGE, RULES,
};

/// Pseudo-rule for malformed `dilu-lint:` directives (unknown rule names,
/// missing `-- <reason>`). Not suppressible and never scoped away: a bad
/// suppression is always an error.
pub const ALLOW_RULE: &str = "lint-allow";

/// One diagnostic: where, which rule, what, and how to fix it.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Finding {
    /// Workspace-relative path, `/`-separated.
    pub file: String,
    /// 1-based line.
    pub line: u32,
    /// Rule id ([`RULES`] or [`ALLOW_RULE`]).
    pub rule: &'static str,
    /// What was found.
    pub message: String,
    /// The offending source line, trimmed.
    pub snippet: String,
    /// The suggested fix.
    pub hint: &'static str,
}

/// The outcome of a lint run.
#[derive(Debug, Default)]
pub struct LintReport {
    /// Live findings — non-empty means the audit fails.
    pub findings: Vec<Finding>,
    /// Findings silenced by a reasoned `allow(...)` directive.
    pub suppressed: Vec<Finding>,
    /// Number of `.rs` files audited.
    pub files_checked: usize,
}

impl LintReport {
    /// `true` when the audit passed.
    pub fn clean(&self) -> bool {
        self.findings.is_empty()
    }

    /// Human-readable diagnostics, one block per finding.
    pub fn render_human(&self) -> String {
        let mut out = String::new();
        for f in &self.findings {
            out.push_str(&format!("{}:{}: [{}] {}\n", f.file, f.line, f.rule, f.message));
            if !f.snippet.is_empty() {
                out.push_str(&format!("    |  {}\n", f.snippet));
            }
            out.push_str(&format!("    = help: {}\n", f.hint));
        }
        out.push_str(&format!(
            "{} file(s) audited, {} finding(s), {} reasoned suppression(s)\n",
            self.files_checked,
            self.findings.len(),
            self.suppressed.len()
        ));
        out
    }

    /// The machine-readable digest behind `dilu lint --json`.
    pub fn to_json(&self) -> serde::Value {
        use serde::Value;
        let render = |list: &[Finding]| {
            Value::Seq(
                list.iter()
                    .map(|f| {
                        Value::Map(vec![
                            (Value::Str("file".into()), Value::Str(f.file.clone())),
                            (Value::Str("line".into()), Value::UInt(u64::from(f.line))),
                            (Value::Str("rule".into()), Value::Str(f.rule.into())),
                            (Value::Str("message".into()), Value::Str(f.message.clone())),
                            (Value::Str("snippet".into()), Value::Str(f.snippet.clone())),
                            (Value::Str("hint".into()), Value::Str(f.hint.into())),
                        ])
                    })
                    .collect(),
            )
        };
        Value::Map(vec![
            (Value::Str("clean".into()), Value::Bool(self.clean())),
            (Value::Str("files_checked".into()), Value::UInt(self.files_checked as u64)),
            (Value::Str("findings".into()), render(&self.findings)),
            (Value::Str("suppressed".into()), render(&self.suppressed)),
        ])
    }
}

/// A validated suppression directive.
struct Directive {
    rules: Vec<String>,
    /// Lines this directive covers: its own and the next token-bearing one.
    covers: (u32, u32),
    /// `false` when malformed (then it suppresses nothing).
    valid: bool,
}

/// Lints one file's source text as if it lived at `rel` (workspace-relative
/// path; drives rule scoping). Returns `(findings, suppressed)`.
///
/// This is the pure core: the fixture self-tests call it directly with
/// planted sources and sim-path `rel` names.
pub fn lint_source(source: &str, rel: &str, config: &Config) -> (Vec<Finding>, Vec<Finding>) {
    let lexed = lexer::lex(source);
    let snippet = |line: u32| {
        lexed.lines.get(line as usize - 1).map(|l| l.trim().to_string()).unwrap_or_default()
    };

    // Parse suppression directives; malformed ones are findings themselves.
    let mut findings: Vec<Finding> = Vec::new();
    let mut directives: Vec<Directive> = Vec::new();
    for raw in &lexed.directives {
        let next_tok_line =
            lexed.toks.iter().map(|t| t.line).find(|&l| l > raw.line).unwrap_or(raw.line);
        match parse_allow(&raw.body) {
            Ok(rules) => {
                directives.push(Directive { rules, covers: (raw.line, next_tok_line), valid: true })
            }
            Err(message) => {
                findings.push(Finding {
                    file: rel.to_string(),
                    line: raw.line,
                    rule: ALLOW_RULE,
                    message,
                    snippet: snippet(raw.line),
                    hint: "write `// dilu-lint: allow(<rule>) -- <reason>` with a real reason",
                });
                directives.push(Directive {
                    rules: Vec::new(),
                    covers: (raw.line, next_tok_line),
                    valid: false,
                });
            }
        }
    }

    let raw = rules::check(&lexed, |rule| config.rule_applies(rule, rel));
    let mut suppressed: Vec<Finding> = Vec::new();
    for rf in raw {
        let finding = Finding {
            file: rel.to_string(),
            line: rf.line,
            rule: rf.rule,
            message: rf.detail,
            snippet: snippet(rf.line),
            hint: find_rule(rf.rule).map(|r| r.hint).unwrap_or_default(),
        };
        let covered = directives.iter().any(|d| {
            d.valid
                && (d.covers.0 == rf.line || d.covers.1 == rf.line)
                && d.rules.iter().any(|r| r == rf.rule)
        });
        if covered {
            suppressed.push(finding);
        } else {
            findings.push(finding);
        }
    }
    findings.sort_by(|a, b| (a.line, a.rule).cmp(&(b.line, b.rule)));
    (findings, suppressed)
}

/// Parses `allow(rule, …) -- reason`, validating rule names and requiring
/// a non-empty reason.
fn parse_allow(body: &str) -> Result<Vec<String>, String> {
    let rest = body
        .strip_prefix("allow(")
        .ok_or_else(|| format!("unknown dilu-lint directive `{body}` (only `allow(...)`)"))?;
    let (names, tail) =
        rest.split_once(')').ok_or_else(|| "unclosed `allow(` — missing `)`".to_string())?;
    let rules: Vec<String> =
        names.split(',').map(|s| s.trim().to_string()).filter(|s| !s.is_empty()).collect();
    if rules.is_empty() {
        return Err("allow(...) names no rule".to_string());
    }
    for r in &rules {
        if find_rule(r).is_none() {
            return Err(format!(
                "allow(...) names unknown rule `{r}` (known: {})",
                rule_names().join(", ")
            ));
        }
    }
    let reason = tail.trim();
    let reason = reason
        .strip_prefix("--")
        .ok_or_else(|| "allow(...) needs a reason: `allow(<rule>) -- <why>`".to_string())?;
    if reason.trim().is_empty() {
        return Err("allow(...) has an empty reason after `--`".to_string());
    }
    Ok(rules)
}

/// Walks the workspace at `root` per `config` and lints every `.rs` file.
///
/// `tests/`, `benches/`, `examples/`, `vendor/`, `target/`, and hidden
/// directories are never entered; `rule_filter` restricts the live
/// findings to one rule ([`ALLOW_RULE`] errors always survive the filter —
/// a bad suppression must never be filterable away).
pub fn lint_workspace(
    root: &Path,
    config: &Config,
    rule_filter: Option<&str>,
) -> Result<LintReport, String> {
    let mut files: Vec<std::path::PathBuf> = Vec::new();
    for scan_root in &config.scan_roots {
        let dir = root.join(scan_root);
        if dir.is_dir() {
            collect_rs_files(&dir, &mut files)?;
        }
    }
    files.sort();

    let mut report = LintReport::default();
    for path in files {
        let rel = path
            .strip_prefix(root)
            .map_err(|_| "scanned file escapes the workspace root".to_string())?
            .components()
            .map(|c| c.as_os_str().to_string_lossy())
            .collect::<Vec<_>>()
            .join("/");
        if config.scan_exclude.iter().any(|p| config::path_has_prefix(&rel, p)) {
            continue;
        }
        let source = std::fs::read_to_string(&path)
            .map_err(|e| format!("cannot read {}: {e}", path.display()))?;
        let (mut findings, mut suppressed) = lint_source(&source, &rel, config);
        if let Some(filter) = rule_filter {
            findings.retain(|f| f.rule == filter || f.rule == ALLOW_RULE);
        }
        report.findings.append(&mut findings);
        report.suppressed.append(&mut suppressed);
        report.files_checked += 1;
    }
    report.findings.sort_by(|a, b| (&a.file, a.line, a.rule).cmp(&(&b.file, b.line, b.rule)));
    report.suppressed.sort_by(|a, b| (&a.file, a.line, a.rule).cmp(&(&b.file, b.line, b.rule)));
    Ok(report)
}

/// Directory names never entered by the walk: test/bench/example code is
/// exempt from the determinism rules, and vendored/generated trees are not
/// first-party.
const SKIP_DIRS: &[&str] = &["tests", "benches", "examples", "vendor", "target"];

fn collect_rs_files(dir: &Path, out: &mut Vec<std::path::PathBuf>) -> Result<(), String> {
    let entries =
        std::fs::read_dir(dir).map_err(|e| format!("cannot read {}: {e}", dir.display()))?;
    let mut entries: Vec<_> =
        entries.collect::<Result<_, _>>().map_err(|e| format!("walk error: {e}"))?;
    entries.sort_by_key(std::fs::DirEntry::file_name);
    for entry in entries {
        let path = entry.path();
        let name = entry.file_name().to_string_lossy().into_owned();
        if path.is_dir() {
            if name.starts_with('.') || SKIP_DIRS.contains(&name.as_str()) {
                continue;
            }
            collect_rs_files(&path, out)?;
        } else if name.ends_with(".rs") {
            out.push(path);
        }
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sim_path_config() -> Config {
        Config::default()
    }

    #[test]
    fn allow_with_reason_suppresses_same_and_next_line() {
        let src = "
// dilu-lint: allow(no-ambient-time) -- wall-clock reporting only
let t = std::time::Instant::now();
let u = std::time::Instant::now(); // dilu-lint: allow(no-ambient-time) -- also reporting
";
        let (findings, suppressed) = lint_source(src, "crates/sim/src/x.rs", &sim_path_config());
        assert!(findings.is_empty(), "{findings:?}");
        assert_eq!(suppressed.len(), 2);
    }

    #[test]
    fn allow_does_not_leak_past_the_next_line() {
        let src = "
// dilu-lint: allow(no-ambient-time) -- covers only the next line
let a = std::time::Instant::now();
let b = std::time::Instant::now();
";
        let (findings, suppressed) = lint_source(src, "crates/sim/src/x.rs", &sim_path_config());
        assert_eq!(findings.len(), 1, "{findings:?}");
        assert_eq!(findings[0].line, 4);
        assert_eq!(suppressed.len(), 1);
    }

    #[test]
    fn allow_for_the_wrong_rule_suppresses_nothing() {
        let src = "
// dilu-lint: allow(no-ambient-rng) -- wrong rule
let t = std::time::Instant::now();
";
        let (findings, _) = lint_source(src, "crates/sim/src/x.rs", &sim_path_config());
        assert_eq!(findings.len(), 1);
        assert_eq!(findings[0].rule, rules::NO_AMBIENT_TIME);
    }

    #[test]
    fn missing_reason_is_an_error_and_does_not_suppress() {
        let src = "
// dilu-lint: allow(no-ambient-time)
let t = std::time::Instant::now();
";
        let (findings, suppressed) = lint_source(src, "crates/sim/src/x.rs", &sim_path_config());
        assert!(suppressed.is_empty());
        let rules_hit: Vec<&str> = findings.iter().map(|f| f.rule).collect();
        assert!(rules_hit.contains(&ALLOW_RULE), "{findings:?}");
        assert!(rules_hit.contains(&rules::NO_AMBIENT_TIME), "{findings:?}");
    }

    #[test]
    fn unknown_rule_in_allow_is_an_error() {
        let src = "// dilu-lint: allow(no-such-rule) -- whatever\nlet x = 1;\n";
        let (findings, _) = lint_source(src, "crates/sim/src/x.rs", &sim_path_config());
        assert_eq!(findings.len(), 1);
        assert_eq!(findings[0].rule, ALLOW_RULE);
        assert!(findings[0].message.contains("no-such-rule"));
        assert!(findings[0].message.contains("no-unordered-iteration"), "lists known rules");
    }

    #[test]
    fn report_json_shape_is_stable() {
        let mut report = LintReport { files_checked: 3, ..LintReport::default() };
        report.findings.push(Finding {
            file: "crates/x/src/y.rs".into(),
            line: 7,
            rule: rules::NO_AMBIENT_TIME,
            message: "m".into(),
            snippet: "s".into(),
            hint: "h",
        });
        let json = serde_json::to_string(&report.to_json()).unwrap();
        assert!(json.contains("\"clean\":false"));
        assert!(json.contains("\"files_checked\":3"));
        assert!(json.contains("\"rule\":\"no-ambient-time\""));
    }
}

//! A token-level Rust lexer for the determinism rules.
//!
//! The rules need *where identifiers appear*, not full syntax: this lexer
//! strips everything that could fake a match (string literals of every
//! flavour, char literals, lifetimes, nested block comments, numeric
//! literals) and keeps a flat stream of identifier/punctuation tokens with
//! line numbers. Line comments are additionally scanned for
//! `dilu-lint: allow(...)` suppression directives, and `#[cfg(test)]` /
//! `#[test]` items are brace-matched so test code inside `src/` trees is
//! exempt, exactly like `tests/` and `benches/` directories.

/// One surviving token: an identifier or a piece of punctuation.
///
/// Multi-character punctuation is collapsed only where the rules need it
/// (`::`); everything else is single characters.
#[derive(Debug, Clone, PartialEq, Eq)]
pub(crate) struct Tok {
    /// 1-based source line.
    pub(crate) line: u32,
    /// Identifier text or punctuation string.
    pub(crate) s: String,
}

impl Tok {
    pub(crate) fn is(&self, s: &str) -> bool {
        self.s == s
    }

    /// `true` for identifier tokens (first char alphabetic or `_`).
    pub(crate) fn is_ident(&self) -> bool {
        self.s.chars().next().is_some_and(|c| c.is_alphabetic() || c == '_')
    }
}

/// A raw `dilu-lint:` line-comment directive, before validation.
#[derive(Debug, Clone)]
pub(crate) struct RawDirective {
    /// 1-based line the comment sits on.
    pub(crate) line: u32,
    /// Comment text after the `dilu-lint:` marker, trimmed.
    pub(crate) body: String,
}

/// The lexed view of one source file.
pub(crate) struct Lexed {
    pub(crate) toks: Vec<Tok>,
    /// `dilu-lint:` directives found in line comments.
    pub(crate) directives: Vec<RawDirective>,
    /// Source lines (for diagnostic snippets).
    pub(crate) lines: Vec<String>,
    /// Per-token: inside a `#[cfg(test)]` / `#[test]` item body.
    pub(crate) exempt: Vec<bool>,
}

/// Lexes `source` into the token/directive view the rules consume.
pub(crate) fn lex(source: &str) -> Lexed {
    let mut toks = Vec::new();
    let mut directives = Vec::new();
    let bytes: Vec<char> = source.chars().collect();
    let mut i = 0usize;
    let mut line: u32 = 1;
    let n = bytes.len();

    while i < n {
        let c = bytes[i];
        match c {
            '\n' => {
                line += 1;
                i += 1;
            }
            c if c.is_whitespace() => i += 1,
            '/' if i + 1 < n && bytes[i + 1] == '/' => {
                // Line comment (incl. doc comments): capture for directives.
                let start = i + 2;
                let mut j = start;
                while j < n && bytes[j] != '\n' {
                    j += 1;
                }
                let text: String = bytes[start..j].iter().collect();
                let trimmed = text.trim_start_matches(['/', '!']).trim();
                if let Some(rest) = trimmed.strip_prefix("dilu-lint:") {
                    directives.push(RawDirective { line, body: rest.trim().to_string() });
                }
                i = j;
            }
            '/' if i + 1 < n && bytes[i + 1] == '*' => {
                // Block comment, nested.
                let mut depth = 1;
                let mut j = i + 2;
                while j < n && depth > 0 {
                    if bytes[j] == '\n' {
                        line += 1;
                        j += 1;
                    } else if bytes[j] == '/' && j + 1 < n && bytes[j + 1] == '*' {
                        depth += 1;
                        j += 2;
                    } else if bytes[j] == '*' && j + 1 < n && bytes[j + 1] == '/' {
                        depth -= 1;
                        j += 2;
                    } else {
                        j += 1;
                    }
                }
                i = j;
            }
            '"' => i = skip_string(&bytes, i, &mut line),
            'r' | 'b' if raw_or_byte_string_start(&bytes, i) => {
                i = skip_raw_or_byte_string(&bytes, i, &mut line);
            }
            '\'' => {
                // Char literal vs lifetime.
                if i + 1 < n && bytes[i + 1] == '\\' {
                    // Escaped char literal: skip to the closing quote.
                    let mut j = i + 2;
                    while j < n && bytes[j] != '\'' {
                        j += 1;
                    }
                    i = j + 1;
                } else if i + 2 < n && bytes[i + 2] == '\'' {
                    i += 3; // plain char literal 'x'
                } else {
                    // Lifetime: consume the identifier, emit nothing.
                    let mut j = i + 1;
                    while j < n && (bytes[j].is_alphanumeric() || bytes[j] == '_') {
                        j += 1;
                    }
                    i = j;
                }
            }
            c if c.is_ascii_digit() => i = skip_number(&bytes, i),
            c if c.is_alphabetic() || c == '_' => {
                let mut j = i;
                while j < n && (bytes[j].is_alphanumeric() || bytes[j] == '_') {
                    j += 1;
                }
                toks.push(Tok { line, s: bytes[i..j].iter().collect() });
                i = j;
            }
            ':' if i + 1 < n && bytes[i + 1] == ':' => {
                toks.push(Tok { line, s: "::".into() });
                i += 2;
            }
            c => {
                toks.push(Tok { line, s: c.to_string() });
                i += 1;
            }
        }
    }

    let exempt = mark_test_items(&toks);
    let lines = source.lines().map(str::to_string).collect();
    Lexed { toks, directives, lines, exempt }
}

/// `r"..."`, `r#"..."#`, `b"..."`, `br#"..."#` — but not the identifiers
/// `r` / `b` themselves.
fn raw_or_byte_string_start(bytes: &[char], i: usize) -> bool {
    // Must not be the tail of a longer identifier.
    if i > 0 && (bytes[i - 1].is_alphanumeric() || bytes[i - 1] == '_') {
        return false;
    }
    let mut j = i;
    if bytes[j] == 'b' {
        j += 1;
        if j < bytes.len() && bytes[j] == 'r' {
            j += 1;
        }
    } else if bytes[j] == 'r' {
        j += 1;
    }
    while j < bytes.len() && bytes[j] == '#' {
        j += 1;
    }
    j < bytes.len() && bytes[j] == '"'
}

fn skip_raw_or_byte_string(bytes: &[char], mut i: usize, line: &mut u32) -> usize {
    let mut raw = false;
    if bytes[i] == 'b' {
        i += 1;
    }
    if i < bytes.len() && bytes[i] == 'r' {
        raw = true;
        i += 1;
    }
    let mut hashes = 0;
    while i < bytes.len() && bytes[i] == '#' {
        hashes += 1;
        i += 1;
    }
    debug_assert!(i < bytes.len() && bytes[i] == '"');
    if !raw {
        return skip_string(bytes, i, line);
    }
    i += 1; // opening quote
    while i < bytes.len() {
        if bytes[i] == '\n' {
            *line += 1;
            i += 1;
        } else if bytes[i] == '"' {
            let mut k = 0;
            while k < hashes && i + 1 + k < bytes.len() && bytes[i + 1 + k] == '#' {
                k += 1;
            }
            if k == hashes {
                return i + 1 + hashes;
            }
            i += 1;
        } else {
            i += 1;
        }
    }
    i
}

/// Skips a plain (escaped) string literal starting at the opening quote.
fn skip_string(bytes: &[char], mut i: usize, line: &mut u32) -> usize {
    i += 1;
    while i < bytes.len() {
        match bytes[i] {
            '\\' => i += 2,
            '\n' => {
                *line += 1;
                i += 1;
            }
            '"' => return i + 1,
            _ => i += 1,
        }
    }
    i
}

/// Skips a numeric literal (ints, floats, exponents, suffixes, `_`).
fn skip_number(bytes: &[char], mut i: usize) -> usize {
    let n = bytes.len();
    while i < n && (bytes[i].is_alphanumeric() || bytes[i] == '_') {
        i += 1;
    }
    // Fraction only when followed by a digit (`1.max(2)` keeps its `.max`).
    if i + 1 < n && bytes[i] == '.' && bytes[i + 1].is_ascii_digit() {
        i += 1;
        while i < n && (bytes[i].is_alphanumeric() || bytes[i] == '_') {
            i += 1;
        }
    }
    // Exponent sign (`1e-5` — the alnum loop above ate the `e`).
    if i + 1 < n && (bytes[i] == '+' || bytes[i] == '-') && bytes[i - 1].eq_ignore_ascii_case(&'e')
    {
        i += 1;
        while i < n && (bytes[i].is_alphanumeric() || bytes[i] == '_') {
            i += 1;
        }
    }
    i
}

/// Marks token ranges covered by `#[cfg(test)]` / `#[test]` items (the
/// attribute through its item's closing brace, or its `;` for brace-less
/// items) so the rules skip test code embedded in `src/` files.
fn mark_test_items(toks: &[Tok]) -> Vec<bool> {
    let mut exempt = vec![false; toks.len()];
    let mut i = 0;
    while i < toks.len() {
        if !toks[i].is("#") {
            i += 1;
            continue;
        }
        // `#[...]` or `#![...]`.
        let mut j = i + 1;
        if j < toks.len() && toks[j].is("!") {
            j += 1;
        }
        if j >= toks.len() || !toks[j].is("[") {
            i += 1;
            continue;
        }
        // Bracket-match the attribute, noting whether it mentions `test` —
        // but `#[cfg(not(test))]` gates *non*-test code and stays live.
        let mut depth = 0usize;
        let mut is_test = false;
        while j < toks.len() {
            if toks[j].is("[") || toks[j].is("(") {
                depth += 1;
            } else if toks[j].is("]") || toks[j].is(")") {
                depth -= 1;
                if depth == 0 && toks[j].is("]") {
                    break;
                }
            } else if toks[j].is("test") {
                let negated = j >= 2 && toks[j - 1].is("(") && toks[j - 2].is("not");
                if !negated {
                    is_test = true;
                }
            }
            j += 1;
        }
        let attr_end = j;
        if !is_test {
            i = attr_end + 1;
            continue;
        }
        // Find the item body: first `{` after the attribute (skipping any
        // further attributes and the item signature), brace-matched — or a
        // `;` before any brace (e.g. `#[cfg(test)] use ...;`).
        let mut k = attr_end + 1;
        let mut body_end = toks.len();
        while k < toks.len() {
            if toks[k].is(";") {
                body_end = k;
                break;
            }
            if toks[k].is("{") {
                let mut braces = 0usize;
                while k < toks.len() {
                    if toks[k].is("{") {
                        braces += 1;
                    } else if toks[k].is("}") {
                        braces -= 1;
                        if braces == 0 {
                            break;
                        }
                    }
                    k += 1;
                }
                body_end = k;
                break;
            }
            k += 1;
        }
        let body_end = body_end.min(toks.len().saturating_sub(1));
        for flag in exempt.iter_mut().take(body_end + 1).skip(i) {
            *flag = true;
        }
        i = body_end + 1;
    }
    exempt
}

#[cfg(test)]
mod tests {
    use super::*;

    fn idents(src: &str) -> Vec<String> {
        lex(src).toks.into_iter().filter(|t| t.is_ident()).map(|t| t.s).collect()
    }

    #[test]
    fn strings_and_comments_hide_identifiers() {
        let src = r##"
            let a = "HashMap::new()"; // HashMap in a comment
            /* HashMap in a block /* nested HashMap */ comment */
            let b = r#"HashMap"#;
            let c = 'H';
            let real = Vec::new();
        "##;
        let ids = idents(src);
        assert!(!ids.iter().any(|s| s == "HashMap"), "literal text must not leak: {ids:?}");
        assert!(ids.iter().any(|s| s == "Vec"));
    }

    #[test]
    fn lifetimes_are_not_char_literals() {
        let src = "fn f<'a>(x: &'a str) -> &'a str { x }";
        let ids = idents(src);
        assert!(ids.iter().any(|s| s == "str"));
        // The lexer must not treat `'a>(...` as a char and swallow tokens.
        assert!(ids.iter().any(|s| s == "f"));
    }

    #[test]
    fn directives_are_captured_with_lines() {
        let src = "let x = 1;\n// dilu-lint: allow(no-ambient-time) -- because\nlet y = 2;\n";
        let lexed = lex(src);
        assert_eq!(lexed.directives.len(), 1);
        assert_eq!(lexed.directives[0].line, 2);
        assert!(lexed.directives[0].body.starts_with("allow("));
    }

    #[test]
    fn cfg_test_modules_are_exempt() {
        let src = "
            use std::collections::BTreeMap;
            #[cfg(test)]
            mod tests {
                use std::collections::HashMap;
                fn f() { let m: HashMap<u32, u32> = HashMap::new(); }
            }
            fn live() {}
        ";
        let lexed = lex(src);
        for (tok, exempt) in lexed.toks.iter().zip(&lexed.exempt) {
            if tok.is("HashMap") {
                assert!(*exempt, "HashMap inside #[cfg(test)] must be exempt");
            }
            if tok.is("live") {
                assert!(!*exempt, "code after the test module is live again");
            }
        }
    }

    #[test]
    fn test_attribute_functions_are_exempt() {
        let src = "
            fn live() { let t = 1; }
            #[test]
            fn checks() { let m = std::time::Instant::now(); }
            fn live_again() {}
        ";
        let lexed = lex(src);
        for (tok, exempt) in lexed.toks.iter().zip(&lexed.exempt) {
            if tok.is("Instant") {
                assert!(*exempt);
            }
            if tok.is("live_again") {
                assert!(!*exempt);
            }
        }
    }

    #[test]
    fn numeric_literals_keep_following_method_calls() {
        let src = "let x = 1.max(2); let y = 1.5e-3; let z = 0x_ffu32;";
        let ids = idents(src);
        assert!(ids.iter().any(|s| s == "max"), "`1.max` keeps its method token: {ids:?}");
        assert!(!ids.iter().any(|s| s == "e"), "exponents are not identifiers");
    }
}

//! Algorithm 2: fast scale-up/down token control.

use std::collections::VecDeque;

use dilu_gpu::{Grant, InstanceId, InstanceView, SharePolicy, SmRate};
use dilu_sim::{SimDuration, SimTime};
use serde::{Deserialize, Serialize};

/// Tunables of the token manager (paper defaults in parentheses).
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct RckmConfig {
    /// Scale factor on quota-derived token budgets; `1.0` means `MaxTokens`
    /// equals one whole GPU per cycle (Fig. 18(b) sweeps this).
    pub max_tokens: f64,
    /// KLC-inflation threshold ΔT triggering the protective EMERGENCY path.
    pub eta_violation: f64,
    /// Multiplicative grant growth while recovering/expanding.
    pub eta_increase: f64,
    /// Kernel-rate window length in token cycles (≈ 5 ms each).
    pub rate_window: usize,
    /// Pending batches at an SLO-sensitive instance treated as a burst
    /// (the KLC of an iteration grows with the requests batched into it, so
    /// a deep queue is the same bursty-workload signal Algorithm 2 reads
    /// from ΔT).
    pub queue_pressure: usize,
}

impl Default for RckmConfig {
    fn default() -> Self {
        RckmConfig {
            max_tokens: 1.0,
            eta_violation: 0.5,
            eta_increase: 1.3,
            rate_window: 10,
            queue_pressure: 3,
        }
    }
}

/// Algorithm 2's per-instance scaling state.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum ScaleState {
    /// No collocated instances: free to use the limit quota.
    None,
    /// Protective fast scale-up of a suffering SLO-sensitive instance (and
    /// fast scale-down of its co-runners).
    Emergency,
    /// Ramping grants back up after an emergency or into idle fragments.
    Recovery,
    /// Stable contention: everyone holds its request quota.
    Contention,
}

#[derive(Debug, Clone)]
struct InstanceCtl {
    state: ScaleState,
    /// Last issued grant as an SM fraction.
    r_last: f64,
    /// Kernel blocks issued per recent cycle, newest last.
    window: VecDeque<u64>,
}

impl InstanceCtl {
    fn new(rate_window: usize) -> Self {
        InstanceCtl {
            state: ScaleState::Contention,
            r_last: 0.0,
            window: VecDeque::with_capacity(rate_window),
        }
    }

    fn push_rate(&mut self, blocks: u64, cap: usize) {
        if self.window.len() == cap {
            self.window.pop_front();
        }
        self.window.push_back(blocks);
    }

    fn window_sum(&self) -> u64 {
        self.window.iter().sum()
    }
}

/// Dilu's token-issuing share policy (one per GPU).
///
/// See the [crate docs](crate) for the control law and an example.
#[derive(Debug, Clone)]
pub struct RckmPolicy {
    config: RckmConfig,
    /// Per-instance control state, in first-seen order. A linear small-vec
    /// instead of a hash map: the token manager runs once per 5 ms cycle
    /// per GPU with a handful of residents, so in the simulator's hot loop
    /// a few `u64` compares beat hashing by a wide margin.
    ctl: Vec<(InstanceId, InstanceCtl)>,
    /// Reused per-cycle scratch: each view's kernel-rate window sum.
    sum_buf: Vec<u64>,
    /// The SLO-sensitive instance currently holding the EMERGENCY state,
    /// with its last observed ΔT. Only this instance may reset it (§3.4.1).
    emergency: Option<(InstanceId, f64)>,
}

impl RckmPolicy {
    /// Creates a token manager with the given tunables.
    pub fn new(config: RckmConfig) -> Self {
        RckmPolicy { config, ctl: Vec::new(), sum_buf: Vec::new(), emergency: None }
    }

    /// The configuration in effect.
    pub fn config(&self) -> &RckmConfig {
        &self.config
    }

    /// The instance currently holding the emergency, if any.
    pub fn emergency_holder(&self) -> Option<InstanceId> {
        self.emergency.map(|(id, _)| id)
    }

    /// The scaling state of `id`, if tracked.
    pub fn state_of(&self, id: InstanceId) -> Option<ScaleState> {
        self.ctl.iter().find(|(cid, _)| *cid == id).map(|(_, c)| c.state)
    }

    /// The burst/contention pressure of an instance: relative KLC inflation,
    /// amplified by queue depth (more requests per iteration ⇒ longer KLC).
    fn pressure(&self, v: &InstanceView) -> f64 {
        let queue = if v.class.is_slo_sensitive() && v.queue_len >= self.config.queue_pressure {
            v.queue_len as f64 / self.config.queue_pressure as f64
        } else {
            0.0
        };
        v.klc_inflation.max(queue)
    }

    fn refresh_emergency(&mut self, views: &[InstanceView]) {
        // Only the holder may reset/modify the EMERGENCY state; it clears
        // when the holder's pressure subsides or the holder departs.
        if let Some((holder, _)) = self.emergency {
            match views.iter().find(|v| v.id == holder) {
                Some(v) if self.pressure(v) > self.config.eta_violation => {
                    self.emergency = Some((holder, self.pressure(v)));
                }
                _ => self.emergency = None,
            }
        }
        if self.emergency.is_none() {
            // Adopt the most pressured SLO-sensitive instance, if any
            // crosses the threshold.
            let candidate = views
                .iter()
                .filter(|v| v.class.is_slo_sensitive())
                .map(|v| (v.id, self.pressure(v)))
                .filter(|&(_, p)| p > self.config.eta_violation)
                .max_by(|a, b| a.1.total_cmp(&b.1));
            if let Some((id, p)) = candidate {
                self.emergency = Some((id, p));
            }
        }
    }
}

impl SharePolicy for RckmPolicy {
    fn allocate(
        &mut self,
        now: SimTime,
        quantum: SimDuration,
        views: &[InstanceView],
    ) -> Vec<Grant> {
        let mut out = Vec::new();
        self.allocate_into(now, quantum, views, &mut out);
        out
    }

    fn allocate_into(
        &mut self,
        _now: SimTime,
        _quantum: SimDuration,
        views: &[InstanceView],
        grants: &mut Vec<Grant>,
    ) {
        let cfg = self.config;
        // Drop state for departed instances.
        self.ctl.retain(|(id, _)| views.iter().any(|v| v.id == *id));
        for v in views {
            match self.ctl.iter_mut().find(|(id, _)| *id == v.id) {
                Some((_, c)) => c.push_rate(v.blocks_last_quantum, cfg.rate_window),
                None => {
                    let mut c = InstanceCtl::new(cfg.rate_window);
                    c.push_rate(v.blocks_last_quantum, cfg.rate_window);
                    self.ctl.push((v.id, c));
                }
            }
        }
        self.refresh_emergency(views);
        let emergency = self.emergency;

        // Each view's kernel-rate window sum, computed once per cycle (the
        // idle/contention branches below would otherwise re-derive them
        // quadratically).
        let mut sums = std::mem::take(&mut self.sum_buf);
        sums.clear();
        sums.extend(views.iter().map(|v| {
            self.ctl.iter().find(|(id, _)| *id == v.id).map(|(_, c)| c.window_sum()).unwrap_or(0)
        }));

        // Activity of SLO-sensitive co-runners, for best-effort ramping.
        let slo_active: bool =
            views.iter().zip(&sums).any(|(v, &sum)| v.class.is_slo_sensitive() && sum > 0);

        grants.clear();
        grants.reserve(views.len());
        for (i, v) in views.iter().enumerate() {
            let others_idle = sums.iter().enumerate().all(|(j, &sum)| j == i || sum == 0);
            let alone = views.len() == 1;
            let my_sum = sums[i];
            let (_, ctl) =
                self.ctl.iter_mut().find(|(id, _)| *id == v.id).expect("ctl inserted above");
            let request = cfg.max_tokens * v.request.as_fraction();
            let limit = cfg.max_tokens * v.limit.as_fraction();

            let (state, issue) = if v.class.is_slo_sensitive() {
                if emergency.is_some_and(|(id, _)| id == v.id) {
                    // Protective fast scale-up (Algorithm 2 line 14-15).
                    (ScaleState::Emergency, limit)
                } else if my_sum == 0 {
                    // Idle inference: release SMs down to request (line 16-17).
                    (ScaleState::Recovery, request)
                } else if others_idle {
                    // Everything else idle: expand into the fragments
                    // (line 18-19), up to the whole card.
                    (
                        ScaleState::Recovery,
                        (ctl.r_last.max(request) * cfg.eta_increase).min(cfg.max_tokens),
                    )
                } else {
                    // Stable contention (line 20-21).
                    (ScaleState::Contention, request)
                }
            } else if alone {
                // No collocation: the limit quota (line 24-25).
                (ScaleState::None, limit)
            } else if let Some((_, delta_t)) = emergency {
                // Fast scale-down proportional to the holder's inflation
                // (line 26-27).
                (ScaleState::Emergency, request.min(ctl.r_last.max(request)) / (1.0 + delta_t))
            } else if !slo_active {
                // SLO-sensitive co-runners idle: ramp toward limit
                // (line 28-29).
                (ScaleState::Recovery, (ctl.r_last.max(request) * cfg.eta_increase).min(limit))
            } else {
                // Contention: hold at request (line 30-31, floored at the
                // request quota to avoid starvation).
                (ScaleState::Contention, request)
            };

            ctl.state = state;
            ctl.r_last = issue;
            grants.push(Grant { id: v.id, smr: SmRate::from_fraction(issue.max(0.0)) });
        }
        self.sum_buf = sums;
    }

    fn notify_resize(&mut self, id: InstanceId, request: SmRate, limit: SmRate) {
        // Quotas arrive fresh in the next cycle's views; only the derived
        // last-grant state needs re-clamping so a shrink takes effect this
        // quantum instead of waiting for the multiplicative ramp to decay,
        // and a grow starts its ramp from the new request floor.
        if let Some((_, ctl)) = self.ctl.iter_mut().find(|(cid, _)| *cid == id) {
            let floor = self.config.max_tokens * request.as_fraction();
            let ceiling = self.config.max_tokens * limit.as_fraction();
            ctl.r_last = ctl.r_last.clamp(floor.min(ceiling), ceiling);
        }
    }

    fn name(&self) -> &str {
        "dilu-rckm"
    }

    fn idle_history_cycles(&self) -> u64 {
        // Derived state and how fast it converges under workless cycles:
        // the kernel-rate window fills with zeros in `rate_window` cycles
        // (plus `queue_pressure` as a margin for the queue-derived burst
        // signal draining), and the multiplicative grant ramp reaches any
        // ceiling within log_η of the limit/request ratio — bounded here
        // by 10⁴ (4·ln10), far beyond any profiled quota spread. η ≤ 1
        // never grows, so it converges with the window. The result floors
        // at the trait default, which already covers the paper defaults
        // (10 + 3 + 36 = 49 < 96); a custom config with a longer window
        // raises the cap instead of silently breaking the event-driven ≡
        // dense equivalence.
        let cfg = &self.config;
        let ramp = if cfg.eta_increase > 1.0 {
            (4.0 * std::f64::consts::LN_10 / cfg.eta_increase.ln()).ceil() as u64
        } else {
            0
        };
        (cfg.rate_window as u64 + cfg.queue_pressure as u64 + ramp)
            .max(dilu_gpu::IDLE_HISTORY_CYCLES)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use dilu_gpu::TaskClass;

    fn view(
        id: u64,
        class: TaskClass,
        request: f64,
        limit: f64,
        blocks: u64,
        inflation: f64,
    ) -> InstanceView {
        InstanceView {
            id: InstanceId(id),
            class,
            request: SmRate::from_percent(request),
            limit: SmRate::from_percent(limit),
            demand: SmRate::from_percent(limit),
            queue_len: 1,
            blocks_last_quantum: blocks,
            klc_inflation: inflation,
            idle_quanta: if blocks == 0 { 10 } else { 0 },
        }
    }

    fn grant_of(grants: &[Grant], id: u64) -> f64 {
        grants.iter().find(|g| g.id == InstanceId(id)).unwrap().smr.as_fraction()
    }

    fn tick(policy: &mut RckmPolicy, views: &[InstanceView]) -> Vec<Grant> {
        policy.allocate(SimTime::ZERO, SimDuration::from_millis(5), views)
    }

    #[test]
    fn solo_best_effort_gets_limit() {
        let mut p = RckmPolicy::new(RckmConfig::default());
        let g = tick(&mut p, &[view(1, TaskClass::BestEffort, 40.0, 80.0, 100, 0.0)]);
        assert!((grant_of(&g, 1) - 0.80).abs() < 1e-9);
        assert_eq!(p.state_of(InstanceId(1)), Some(ScaleState::None));
    }

    #[test]
    fn contention_holds_requests() {
        let mut p = RckmPolicy::new(RckmConfig::default());
        let views = [
            view(1, TaskClass::SloSensitive, 30.0, 60.0, 50, 0.1),
            view(2, TaskClass::BestEffort, 50.0, 80.0, 80, 0.0),
        ];
        let g = tick(&mut p, &views);
        assert!((grant_of(&g, 1) - 0.30).abs() < 1e-9);
        assert!((grant_of(&g, 2) - 0.50).abs() < 1e-9);
        assert_eq!(p.state_of(InstanceId(2)), Some(ScaleState::Contention));
    }

    #[test]
    fn emergency_scales_inference_up_and_training_down() {
        let mut p = RckmPolicy::new(RckmConfig::default());
        let views = [
            view(1, TaskClass::SloSensitive, 30.0, 60.0, 50, 1.0), // ΔT = 1.0 > η
            view(2, TaskClass::BestEffort, 50.0, 80.0, 80, 0.0),
        ];
        let g = tick(&mut p, &views);
        assert!((grant_of(&g, 1) - 0.60).abs() < 1e-9, "holder gets limit");
        // Training pushed to request/(1+ΔT) = 0.25.
        assert!((grant_of(&g, 2) - 0.25).abs() < 1e-9);
        assert_eq!(p.emergency_holder(), Some(InstanceId(1)));
    }

    #[test]
    fn emergency_clears_when_inflation_subsides() {
        let mut p = RckmPolicy::new(RckmConfig::default());
        let hot = [
            view(1, TaskClass::SloSensitive, 30.0, 60.0, 50, 1.0),
            view(2, TaskClass::BestEffort, 50.0, 80.0, 80, 0.0),
        ];
        tick(&mut p, &hot);
        assert!(p.emergency_holder().is_some());
        let cooled = [
            view(1, TaskClass::SloSensitive, 30.0, 60.0, 50, 0.1),
            view(2, TaskClass::BestEffort, 50.0, 80.0, 80, 0.0),
        ];
        tick(&mut p, &cooled);
        assert_eq!(p.emergency_holder(), None);
    }

    #[test]
    fn idle_inference_releases_sm_to_training() {
        let mut p = RckmPolicy::new(RckmConfig::default());
        let views = [
            view(1, TaskClass::SloSensitive, 30.0, 60.0, 0, 0.0), // idle
            view(2, TaskClass::BestEffort, 50.0, 80.0, 80, 0.0),
        ];
        // Fill the inference window with idleness.
        let mut g = Vec::new();
        for _ in 0..12 {
            g = tick(&mut p, &views);
        }
        assert!((grant_of(&g, 1) - 0.30).abs() < 1e-9, "idle inference at request");
        // Training ramped toward its limit.
        assert!(grant_of(&g, 2) > 0.60, "training grant {}", grant_of(&g, 2));
        assert!(grant_of(&g, 2) <= 0.80 + 1e-9);
    }

    #[test]
    fn inference_expands_when_training_idle() {
        let mut p = RckmPolicy::new(RckmConfig::default());
        let views = [
            view(1, TaskClass::SloSensitive, 30.0, 60.0, 60, 0.0),
            view(2, TaskClass::BestEffort, 50.0, 80.0, 0, 0.0), // idle
        ];
        let mut g = Vec::new();
        for _ in 0..12 {
            g = tick(&mut p, &views);
        }
        // Grows multiplicatively past its limit, up to the whole card.
        assert!(grant_of(&g, 1) > 0.60, "inference grant {}", grant_of(&g, 1));
    }

    #[test]
    fn conservative_max_tokens_caps_grants() {
        let mut p = RckmPolicy::new(RckmConfig { max_tokens: 0.5, ..RckmConfig::default() });
        let g = tick(&mut p, &[view(1, TaskClass::BestEffort, 40.0, 80.0, 100, 0.0)]);
        assert!((grant_of(&g, 1) - 0.40).abs() < 1e-9, "limit × MaxTokens");
    }

    #[test]
    fn departed_instances_are_pruned() {
        let mut p = RckmPolicy::new(RckmConfig::default());
        tick(
            &mut p,
            &[
                view(1, TaskClass::SloSensitive, 30.0, 60.0, 50, 0.0),
                view(2, TaskClass::BestEffort, 50.0, 80.0, 80, 0.0),
            ],
        );
        assert!(p.state_of(InstanceId(2)).is_some());
        tick(&mut p, &[view(1, TaskClass::SloSensitive, 30.0, 60.0, 50, 0.0)]);
        assert_eq!(p.state_of(InstanceId(2)), None);
    }

    #[test]
    fn notify_resize_takes_effect_within_one_cycle() {
        // Inference expands into an idle co-runner's SMs until its grant far
        // exceeds its limit. A vertical shrink must pull the next grant back
        // under the new ceiling immediately, not wait for the ramp to decay.
        let mut p = RckmPolicy::new(RckmConfig::default());
        let expanding = [
            view(1, TaskClass::SloSensitive, 30.0, 60.0, 60, 0.0),
            view(2, TaskClass::BestEffort, 50.0, 80.0, 0, 0.0), // idle
        ];
        let mut g = Vec::new();
        for _ in 0..12 {
            g = tick(&mut p, &expanding);
        }
        assert!(grant_of(&g, 1) > 0.9, "expanded grant {}", grant_of(&g, 1));
        p.notify_resize(InstanceId(1), SmRate::from_percent(10.0), SmRate::from_percent(20.0));
        let shrunk = [
            view(1, TaskClass::SloSensitive, 10.0, 20.0, 60, 0.0),
            view(2, TaskClass::BestEffort, 50.0, 80.0, 0, 0.0),
        ];
        let g = tick(&mut p, &shrunk);
        // Ramp restarts from the clamped state: 0.2 × η = 0.26, not 1.0.
        assert!(grant_of(&g, 1) < 0.3, "post-shrink grant {}", grant_of(&g, 1));
    }

    #[test]
    fn idle_history_bound_tracks_the_config() {
        // Paper defaults converge well inside the trait floor of 96.
        let p = RckmPolicy::new(RckmConfig::default());
        assert_eq!(p.idle_history_cycles(), dilu_gpu::IDLE_HISTORY_CYCLES);
        // A much longer kernel-rate window raises the cap past the floor
        // instead of silently under-replaying idle cycles.
        let wide = RckmPolicy::new(RckmConfig { rate_window: 200, ..RckmConfig::default() });
        assert!(wide.idle_history_cycles() > dilu_gpu::IDLE_HISTORY_CYCLES);
        assert!(wide.idle_history_cycles() >= 200);
        // η ≤ 1 never ramps, so only the window term counts — still
        // floored at the trait default.
        let flat = RckmPolicy::new(RckmConfig { eta_increase: 1.0, ..RckmConfig::default() });
        assert_eq!(flat.idle_history_cycles(), dilu_gpu::IDLE_HISTORY_CYCLES);
    }

    #[test]
    fn grants_never_exceed_whole_gpu_per_instance() {
        let mut p = RckmPolicy::new(RckmConfig::default());
        let views = [
            view(1, TaskClass::SloSensitive, 90.0, 180.0, 60, 0.0),
            view(2, TaskClass::BestEffort, 90.0, 180.0, 0, 0.0),
        ];
        for _ in 0..50 {
            let g = tick(&mut p, &views);
            assert!(grant_of(&g, 1) <= 1.0 + 1e-9);
        }
    }
}

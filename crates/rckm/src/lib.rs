//! The Real-time CUDA Kernel Manager (RCKM): Dilu's introspective vertical
//! scaling (paper §3.4.1, Algorithm 2).
//!
//! The paper's RCKM is a per-node server that issues *tokens* (kernel-block
//! budgets) to each collocated instance every 5 ms, reacting to kernel
//! launch cycle (KLC) inflation of SLO-sensitive instances:
//!
//! * KLC inflation ΔT above `eta_violation` ⇒ **EMERGENCY**: the suffering
//!   inference instance is fast-scaled-up to its `limit` quota while
//!   collocated best-effort instances are scaled down proportionally to ΔT;
//! * an instance that launched no kernels over the rate window is scaled
//!   down to its `request` quota;
//! * when every *other* instance is idle, grants ramp up multiplicatively
//!   (`eta_increase`) — reusing dynamic fragments;
//! * otherwise the GPU sits in stable **CONTENTION** at `request` quotas.
//!
//! [`RckmPolicy`] implements [`dilu_gpu::SharePolicy`], so it drops into the
//! same engine as the MPS/TGS/FaST-GS baselines.
//!
//! # Examples
//!
//! ```
//! use dilu_rckm::{RckmConfig, RckmPolicy};
//! use dilu_gpu::SharePolicy;
//!
//! let policy = RckmPolicy::new(RckmConfig::default());
//! assert_eq!(policy.name(), "dilu-rckm");
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod policy;

pub use policy::{RckmConfig, RckmPolicy, ScaleState};

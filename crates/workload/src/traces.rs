//! Azure-style synthetic trace shapes: Bursty, Periodic, Sporadic.
//!
//! Real Azure Functions traces are not available offline; these generators
//! reproduce the three shape classes the paper uses (after the INFless and
//! FaaSwap characterizations): sudden multiplicative bursts over a low base,
//! diurnal-style periodic oscillation, and long idle gaps with rare short
//! active windows.

use dilu_sim::rng::{component_rng, sample_exponential, SimRng};
use dilu_sim::{SimDuration, SimTime};
use rand::Rng;
use serde::{Deserialize, Serialize};

use crate::ArrivalProcess;

/// The three Azure trace shapes used in Table 3 / Fig. 12.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum TraceKind {
    /// Low base load with sudden 4–6× bursts lasting tens of seconds.
    Bursty,
    /// Smooth periodic oscillation around the base rate.
    Periodic,
    /// Mostly idle with rare, short active windows (keep-alive stressor).
    Sporadic,
}

impl TraceKind {
    /// All trace kinds in Table 3 order.
    pub const ALL: [TraceKind; 3] = [TraceKind::Bursty, TraceKind::Periodic, TraceKind::Sporadic];

    /// The paper's name for the trace.
    pub fn name(self) -> &'static str {
        match self {
            TraceKind::Bursty => "Bursty",
            TraceKind::Periodic => "Periodic",
            TraceKind::Sporadic => "Sporadic",
        }
    }
}

/// A piecewise-constant request-rate function (1 s resolution).
///
/// The trace is both the ground truth for plots (Fig. 12's top panel) and
/// the intensity of a non-homogeneous Poisson sampler.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct RateTrace {
    /// Requests per second for each consecutive one-second interval.
    rps: Vec<f64>,
}

impl RateTrace {
    /// Builds a trace from explicit per-second rates.
    ///
    /// # Panics
    ///
    /// Panics if any rate is negative or not finite.
    pub fn from_rps<I: IntoIterator<Item = f64>>(rps: I) -> Self {
        let rps: Vec<f64> = rps.into_iter().collect();
        assert!(rps.iter().all(|r| r.is_finite() && *r >= 0.0), "rates must be non-negative");
        RateTrace { rps }
    }

    /// Synthesises a trace of `duration` seconds with the given `kind`,
    /// `base_rps`, and burst `scale` (ignored for Periodic/Sporadic shape
    /// parameters other than amplitude).
    pub fn synthesize(
        kind: TraceKind,
        base_rps: f64,
        scale: f64,
        duration: SimDuration,
        seed: u64,
    ) -> Self {
        assert!(base_rps.is_finite() && base_rps > 0.0, "base rate must be positive");
        assert!(scale.is_finite() && scale >= 1.0, "burst scale must be >= 1");
        let secs = duration.as_secs() as usize;
        let mut rng = component_rng(seed, "trace-shape");
        let mut rps = vec![base_rps; secs];
        match kind {
            TraceKind::Bursty => {
                // Bursts arrive roughly every 80 s and last 15–40 s.
                let mut t = 0usize;
                loop {
                    t += sample_exponential(&mut rng, 1.0 / 80.0).round() as usize + 10;
                    if t >= secs {
                        break;
                    }
                    let len = rng.gen_range(15usize..=40).min(secs - t);
                    let burst = base_rps * rng.gen_range(scale * 0.8..=scale * 1.2);
                    for r in rps.iter_mut().skip(t).take(len) {
                        *r = burst;
                    }
                    t += len;
                }
            }
            TraceKind::Periodic => {
                let period = 120.0;
                let amp = (scale - 1.0).max(0.2);
                for (i, r) in rps.iter_mut().enumerate() {
                    let phase = (i as f64) / period * std::f64::consts::TAU;
                    *r = base_rps * (1.0 + amp * 0.5 * (1.0 + phase.sin()));
                }
            }
            TraceKind::Sporadic => {
                // Observation-3: most functions receive requests in rare
                // windows separated by long idle gaps (keep-alive waste).
                for r in rps.iter_mut() {
                    *r = 0.0;
                }
                let mut t = 0usize;
                while t < secs {
                    t += sample_exponential(&mut rng, 1.0 / 75.0).round() as usize + 20;
                    if t >= secs {
                        break;
                    }
                    let len = rng.gen_range(20usize..=45).min(secs - t);
                    for r in rps.iter_mut().skip(t).take(len) {
                        *r = base_rps;
                    }
                    t += len;
                }
            }
        }
        RateTrace { rps }
    }

    /// The per-second rates.
    pub fn rps(&self) -> &[f64] {
        &self.rps
    }

    /// The trace duration.
    pub fn duration(&self) -> SimDuration {
        SimDuration::from_secs(self.rps.len() as u64)
    }

    /// The rate in effect at `t` (zero past the end).
    pub fn rate_at(&self, t: SimTime) -> f64 {
        self.rps.get(t.as_secs() as usize).copied().unwrap_or(0.0)
    }

    /// The maximum per-second rate.
    pub fn peak(&self) -> f64 {
        self.rps.iter().copied().fold(0.0, f64::max)
    }

    /// The mean per-second rate.
    pub fn mean(&self) -> f64 {
        if self.rps.is_empty() {
            0.0
        } else {
            self.rps.iter().sum::<f64>() / self.rps.len() as f64
        }
    }
}

/// Samples arrivals from a [`RateTrace`] as a non-homogeneous Poisson
/// process (per-second thinning).
#[derive(Debug, Clone)]
pub struct TraceProcess {
    trace: RateTrace,
    rng: SimRng,
    /// Last drawn candidate instant (seconds); the stream cursor.
    cursor_s: f64,
    /// `true` when the candidate at `cursor_s` was drawn but its
    /// accept/reject decision is deferred (it landed at or past the
    /// horizon of the previous pull), keeping RNG order chunk-invariant.
    pending: bool,
}

impl TraceProcess {
    /// Creates a sampler over `trace`.
    pub fn new(trace: RateTrace, seed: u64) -> Self {
        TraceProcess {
            trace,
            rng: component_rng(seed, "trace-arrivals"),
            cursor_s: 0.0,
            pending: false,
        }
    }

    /// The underlying rate trace (for plotting alongside results).
    pub fn trace(&self) -> &RateTrace {
        &self.trace
    }
}

impl ArrivalProcess for TraceProcess {
    fn refill(&mut self, horizon: SimTime, max: usize, out: &mut Vec<SimTime>) -> usize {
        let horizon_s = horizon.as_secs_f64().min(self.trace.duration().as_secs_f64());
        let peak = self.trace.peak();
        if peak <= 0.0 {
            return 0;
        }
        // Thinning against the peak rate.
        let mut pushed = 0usize;
        while pushed < max {
            if !self.pending {
                self.cursor_s += sample_exponential(&mut self.rng, peak);
                self.pending = true;
            }
            if self.cursor_s >= horizon_s {
                break;
            }
            let instant = SimTime::from_secs_f64(self.cursor_s);
            self.pending = false;
            let accept: f64 = self.rng.gen_range(0.0..1.0);
            if accept < self.trace.rate_at(instant) / peak {
                out.push(instant);
                pushed += 1;
            }
        }
        pushed
    }

    fn mean_rate(&self) -> f64 {
        self.trace.mean()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bursty_trace_has_bursts_above_base() {
        let t = RateTrace::synthesize(TraceKind::Bursty, 10.0, 5.0, SimDuration::from_secs(600), 1);
        assert!(t.peak() >= 10.0 * 4.0, "peak {}", t.peak());
        let at_base = t.rps().iter().filter(|&&r| (r - 10.0).abs() < 1e-9).count();
        assert!(at_base > 300, "most seconds stay at base, got {at_base}");
    }

    #[test]
    fn sporadic_trace_is_mostly_idle() {
        let t =
            RateTrace::synthesize(TraceKind::Sporadic, 8.0, 1.0, SimDuration::from_secs(600), 5);
        let idle = t.rps().iter().filter(|&&r| r == 0.0).count();
        assert!(idle as f64 > 0.7 * 600.0, "idle seconds {idle}");
        assert!(t.peak() > 0.0, "some activity must exist");
    }

    #[test]
    fn periodic_trace_oscillates() {
        let t =
            RateTrace::synthesize(TraceKind::Periodic, 10.0, 2.0, SimDuration::from_secs(240), 3);
        assert!(t.peak() > 15.0);
        let min = t.rps().iter().copied().fold(f64::INFINITY, f64::min);
        assert!(min >= 10.0 - 1e-9, "periodic never drops below base, got {min}");
    }

    #[test]
    fn trace_process_tracks_intensity() {
        let trace = RateTrace::from_rps(std::iter::repeat_n(30.0, 100));
        let mut p = TraceProcess::new(trace, 4);
        let arrivals = p.generate(SimTime::from_secs(100));
        let rate = arrivals.len() as f64 / 100.0;
        assert!((rate - 30.0).abs() < 4.0, "rate {rate}");
    }

    #[test]
    fn trace_process_is_deterministic() {
        let trace =
            RateTrace::synthesize(TraceKind::Bursty, 10.0, 4.0, SimDuration::from_secs(120), 9);
        let a = TraceProcess::new(trace.clone(), 9).generate(SimTime::from_secs(120));
        let b = TraceProcess::new(trace, 9).generate(SimTime::from_secs(120));
        assert_eq!(a, b);
    }

    /// Bounded-window pulls deliver the exact stream of a one-shot pull
    /// even though rejected candidates burn RNG draws between accepts.
    #[test]
    fn trace_process_refill_is_chunk_invariant() {
        let trace =
            RateTrace::synthesize(TraceKind::Bursty, 12.0, 4.0, SimDuration::from_secs(300), 17);
        let end = SimTime::from_secs(300);
        let one_shot = TraceProcess::new(trace.clone(), 17).generate(end);
        for window in [1usize, 5, 33] {
            let mut p = TraceProcess::new(trace.clone(), 17);
            let mut got = Vec::new();
            while p.refill(end, window, &mut got) == window {}
            assert_eq!(got, one_shot, "window {window}");
        }
    }

    #[test]
    fn rate_at_past_end_is_zero() {
        let t = RateTrace::from_rps([1.0, 2.0]);
        assert_eq!(t.rate_at(SimTime::from_secs(5)), 0.0);
        assert_eq!(t.rate_at(SimTime::from_millis(1_500)), 2.0);
    }
}

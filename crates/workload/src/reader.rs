//! Streaming production-trace readers: Alibaba- and Azure-Functions-shaped
//! CSV files parsed incrementally from disk.
//!
//! Both readers validate the **whole** file eagerly when opened — every
//! malformed row is reported with its file and line number, so config
//! typos fail at scenario build rather than mid-run — but stream arrivals
//! incrementally afterwards, keeping memory bounded regardless of how
//! many requests the trace encodes:
//!
//! - **Alibaba shape** (`time_s,function` rows, one per request): memory
//!   is bounded by the reorder window, never by the request count. Rows
//!   may be locally shuffled by at most [`DEFAULT_REORDER_WINDOW`] rows
//!   (the reader sorts inside a sliding min-heap of that size); a row
//!   displaced further is an error naming its line.
//! - **Azure shape** (`function,c0,c1,…` rows of per-minute invocation
//!   counts): memory is bounded by the number of minutes, never by the
//!   invocation count. Each minute's `c` invocations are expanded on the
//!   fly, evenly spread at the midpoints `(i + ½)·60/c` of the minute.
//!
//! Lines that are empty, start with `#`, or are the documented header
//! (`time_s,function` / `function,…`) are skipped in both formats.

use std::cmp::Reverse;
use std::collections::BinaryHeap;
use std::fs::File;
use std::io::{BufRead, BufReader};
use std::path::{Path, PathBuf};

use dilu_sim::SimTime;

use crate::ArrivalProcess;

/// How many rows an Alibaba-shaped trace may be locally out of order by
/// before the reader rejects it.
pub const DEFAULT_REORDER_WINDOW: usize = 64;

/// The trace-file formats the readers understand.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum TraceFormat {
    /// `time_s,function` rows, one per request, filtered by function.
    Alibaba,
    /// `function,c0,c1,…` rows of per-minute invocation counts.
    Azure,
}

impl TraceFormat {
    /// Every accepted format name, for error messages.
    pub const NAMES: [&'static str; 2] = ["alibaba", "azure"];

    /// Parses a format name from config.
    pub fn parse(name: &str) -> Option<TraceFormat> {
        match name {
            "alibaba" => Some(TraceFormat::Alibaba),
            "azure" => Some(TraceFormat::Azure),
            _ => None,
        }
    }
}

/// Why a trace file was rejected. Every row-level variant names the file
/// and 1-based line so the offending text is one `sed -n` away.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum ReaderError {
    /// The file could not be opened or read.
    Io {
        /// The path that failed.
        path: String,
        /// The underlying I/O error text.
        error: String,
    },
    /// A row failed to parse.
    Malformed {
        /// The file holding the row.
        path: String,
        /// 1-based line number of the row.
        line: u64,
        /// What was wrong with it.
        message: String,
    },
    /// A timestamp was displaced more than the reorder window allows.
    OutOfOrder {
        /// The file holding the row.
        path: String,
        /// 1-based line number of the too-late row.
        line: u64,
        /// The window that was exceeded.
        window: usize,
    },
    /// The requested function has no rows in the file.
    FunctionNotFound {
        /// The file searched.
        path: String,
        /// The function that was missing.
        function: String,
    },
    /// An Azure-shaped file lists the same function twice.
    DuplicateFunction {
        /// The file holding the duplicate.
        path: String,
        /// 1-based line number of the second occurrence.
        line: u64,
        /// The duplicated function name.
        function: String,
    },
    /// The file holds no data rows at all.
    Empty {
        /// The empty file.
        path: String,
    },
}

impl std::fmt::Display for ReaderError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ReaderError::Io { path, error } => write!(f, "{path}: {error}"),
            ReaderError::Malformed { path, line, message } => {
                write!(f, "{path}:{line}: {message}")
            }
            ReaderError::OutOfOrder { path, line, window } => write!(
                f,
                "{path}:{line}: timestamp out of order by more than the reorder window \
                 ({window} rows)"
            ),
            ReaderError::FunctionNotFound { path, function } => {
                write!(f, "{path}: no rows for function {function:?}")
            }
            ReaderError::DuplicateFunction { path, line, function } => {
                write!(f, "{path}:{line}: duplicate row for function {function:?}")
            }
            ReaderError::Empty { path } => write!(f, "{path}: no data rows"),
        }
    }
}

impl std::error::Error for ReaderError {}

/// Opens `path` in the given `format`, validating the whole file, and
/// returns a streaming [`ArrivalProcess`] over the matching rows.
///
/// `function` filters Alibaba rows / selects the Azure row; `None` takes
/// every Alibaba row or the first Azure row.
///
/// # Errors
///
/// Any [`ReaderError`]: I/O failures, malformed rows (named by file and
/// line), order violations, or a missing/duplicated function.
pub fn open_trace(
    path: &Path,
    format: TraceFormat,
    function: Option<&str>,
) -> Result<Box<dyn ArrivalProcess>, ReaderError> {
    match format {
        TraceFormat::Alibaba => {
            Ok(Box::new(AlibabaTraceProcess::open(path, function, DEFAULT_REORDER_WINDOW)?))
        }
        TraceFormat::Azure => Ok(Box::new(AzureTraceProcess::open(path, function)?)),
    }
}

fn open_lines(path: &Path) -> Result<BufReader<File>, ReaderError> {
    File::open(path)
        .map(BufReader::new)
        .map_err(|e| ReaderError::Io { path: path.display().to_string(), error: e.to_string() })
}

/// `true` for lines both formats skip: blanks, `#` comments, and the
/// documented header rows.
fn is_skippable(line: &str, header_first_field: &str) -> bool {
    let trimmed = line.trim();
    trimmed.is_empty()
        || trimmed.starts_with('#')
        || trimmed.split(',').next() == Some(header_first_field)
}

/// A streaming reader over an Alibaba-shaped trace: one `time_s,function`
/// row per request. Holds at most `reorder_window` parsed rows in memory.
#[derive(Debug)]
pub struct AlibabaTraceProcess {
    path: PathBuf,
    function: Option<String>,
    reorder_window: usize,
    /// The live streaming pass; `None` once the file is drained.
    reader: Option<BufReader<File>>,
    line_no: u64,
    /// Sliding reorder window (min-heap of `(instant, line)`).
    heap: BinaryHeap<Reverse<(SimTime, u64)>>,
    /// An instant popped past the previous horizon, not yet emitted.
    carry: Option<SimTime>,
    mean: f64,
}

impl AlibabaTraceProcess {
    /// Opens and fully validates `path`, then positions a streaming pass
    /// at the start. `function` of `None` accepts every row.
    ///
    /// # Errors
    ///
    /// Any [`ReaderError`] produced by validation.
    pub fn open(
        path: &Path,
        function: Option<&str>,
        reorder_window: usize,
    ) -> Result<Self, ReaderError> {
        assert!(reorder_window >= 1, "reorder window must be at least 1");
        let mut validator = AlibabaTraceProcess {
            path: path.to_path_buf(),
            function: function.map(str::to_owned),
            reorder_window,
            reader: Some(open_lines(path)?),
            line_no: 0,
            heap: BinaryHeap::new(),
            carry: None,
            mean: 0.0,
        };
        // Validation pass: every row parses, and the reorder-window merge
        // yields a sorted stream. Constant memory; errors name file:line.
        let mut count: u64 = 0;
        let mut first = SimTime::ZERO;
        let mut last = SimTime::ZERO;
        let mut emitted_up_to: Option<(SimTime, u64)> = None;
        while let Some(next) = validator.fill_and_pop(true)? {
            if let Some((prev, _)) = emitted_up_to {
                if next.0 < prev {
                    return Err(ReaderError::OutOfOrder {
                        path: path.display().to_string(),
                        line: next.1,
                        window: reorder_window,
                    });
                }
            } else {
                first = next.0;
            }
            last = next.0;
            emitted_up_to = Some(next);
            count += 1;
        }
        if count == 0 {
            return Err(match function {
                Some(f) => ReaderError::FunctionNotFound {
                    path: path.display().to_string(),
                    function: f.to_owned(),
                },
                None => ReaderError::Empty { path: path.display().to_string() },
            });
        }
        let span = (last - first).as_secs_f64();
        validator.mean = if span > 0.0 { count as f64 / span } else { 0.0 };
        // Rewind for the streaming pass.
        validator.reader = Some(open_lines(path)?);
        validator.line_no = 0;
        validator.heap.clear();
        validator.carry = None;
        Ok(validator)
    }

    /// Reads rows until one matches the filter, returning its parsed
    /// `(instant, line)`; `None` at end of file. With `strict`, parse
    /// failures error (validation pass); without, they are unreachable
    /// (the file already validated) and skipped defensively.
    fn read_matching_row(&mut self, strict: bool) -> Result<Option<(SimTime, u64)>, ReaderError> {
        let reader = match self.reader.as_mut() {
            Some(reader) => reader,
            None => return Ok(None),
        };
        let mut line = String::new();
        loop {
            line.clear();
            let read = reader.read_line(&mut line).map_err(|e| ReaderError::Io {
                path: self.path.display().to_string(),
                error: e.to_string(),
            })?;
            if read == 0 {
                self.reader = None;
                return Ok(None);
            }
            self.line_no += 1;
            if is_skippable(&line, "time_s") {
                continue;
            }
            match parse_alibaba_row(line.trim()) {
                Ok((instant, func)) => {
                    if self.function.as_deref().is_none_or(|want| want == func) {
                        return Ok(Some((instant, self.line_no)));
                    }
                }
                Err(message) if strict => {
                    return Err(ReaderError::Malformed {
                        path: self.path.display().to_string(),
                        line: self.line_no,
                        message,
                    });
                }
                Err(_) => {}
            }
        }
    }

    /// Tops the reorder heap up to the window size and pops its minimum.
    fn fill_and_pop(&mut self, strict: bool) -> Result<Option<(SimTime, u64)>, ReaderError> {
        while self.reader.is_some() && self.heap.len() < self.reorder_window {
            match self.read_matching_row(strict)? {
                Some(entry) => self.heap.push(Reverse(entry)),
                None => break,
            }
        }
        Ok(self.heap.pop().map(|Reverse(entry)| entry))
    }
}

/// Parses one `time_s,function` row, pre-trimmed.
fn parse_alibaba_row(row: &str) -> Result<(SimTime, &str), String> {
    let mut fields = row.split(',');
    let (time, func) = match (fields.next(), fields.next(), fields.next()) {
        (Some(time), Some(func), None) => (time.trim(), func.trim()),
        _ => return Err(format!("expected exactly 2 fields `time_s,function`, got {row:?}")),
    };
    let secs: f64 =
        time.parse().map_err(|_| format!("timestamp {time:?} is not a number of seconds"))?;
    if !secs.is_finite() || secs < 0.0 {
        return Err(format!("timestamp {secs} must be finite and non-negative"));
    }
    if func.is_empty() {
        return Err("empty function name".to_owned());
    }
    Ok((SimTime::from_secs_f64(secs), func))
}

impl ArrivalProcess for AlibabaTraceProcess {
    fn refill(&mut self, horizon: SimTime, max: usize, out: &mut Vec<SimTime>) -> usize {
        let mut pushed = 0usize;
        while pushed < max {
            let next = match self.carry.take() {
                Some(instant) => instant,
                // The file validated at open; a row that fails to parse
                // now (file mutated underneath us) is skipped.
                None => match self.fill_and_pop(false).unwrap_or(None) {
                    Some((instant, _)) => instant,
                    None => break,
                },
            };
            if next >= horizon {
                self.carry = Some(next);
                break;
            }
            out.push(next);
            pushed += 1;
        }
        pushed
    }

    fn mean_rate(&self) -> f64 {
        self.mean
    }
}

/// A reader over an Azure-Functions-shaped trace: one
/// `function,c0,c1,…` row of per-minute invocation counts, expanded
/// lazily minute by minute.
#[derive(Debug)]
pub struct AzureTraceProcess {
    counts: Vec<u32>,
    /// Expansion cursor: current minute and index within its count.
    minute: usize,
    index: u32,
    mean: f64,
}

impl AzureTraceProcess {
    /// Opens and fully validates `path`, selecting the row for
    /// `function` (or the first data row when `None`).
    ///
    /// # Errors
    ///
    /// Any [`ReaderError`] produced by validation.
    pub fn open(path: &Path, function: Option<&str>) -> Result<Self, ReaderError> {
        let display = path.display().to_string();
        let mut reader = open_lines(path)?;
        let mut line = String::new();
        let mut line_no: u64 = 0;
        let mut chosen: Option<(String, Vec<u32>)> = None;
        loop {
            line.clear();
            let read = reader
                .read_line(&mut line)
                .map_err(|e| ReaderError::Io { path: display.clone(), error: e.to_string() })?;
            if read == 0 {
                break;
            }
            line_no += 1;
            if is_skippable(&line, "function") {
                continue;
            }
            let (name, counts) = parse_azure_row(line.trim()).map_err(|message| {
                ReaderError::Malformed { path: display.clone(), line: line_no, message }
            })?;
            let wanted = function.is_none_or(|want| want == name);
            match (&chosen, wanted) {
                (Some((have, _)), true) if function.is_some() || have == &name => {
                    return Err(ReaderError::DuplicateFunction {
                        path: display,
                        line: line_no,
                        function: name,
                    });
                }
                (None, true) => chosen = Some((name, counts)),
                _ => {}
            }
        }
        let counts = match chosen {
            Some((_, counts)) => counts,
            None => {
                return Err(match function {
                    Some(f) => {
                        ReaderError::FunctionNotFound { path: display, function: f.to_owned() }
                    }
                    None => ReaderError::Empty { path: display },
                });
            }
        };
        let total: u64 = counts.iter().map(|&c| u64::from(c)).sum();
        let span_s = counts.len() as f64 * 60.0;
        let mean = if span_s > 0.0 { total as f64 / span_s } else { 0.0 };
        Ok(AzureTraceProcess { counts, minute: 0, index: 0, mean })
    }
}

/// Parses one `function,c0,c1,…` row, pre-trimmed.
fn parse_azure_row(row: &str) -> Result<(String, Vec<u32>), String> {
    let mut fields = row.split(',');
    let name = fields.next().unwrap_or("").trim();
    if name.is_empty() {
        return Err("empty function name".to_owned());
    }
    let mut counts = Vec::new();
    for field in fields {
        let count: u32 = field
            .trim()
            .parse()
            .map_err(|_| format!("per-minute count {:?} is not a whole number", field.trim()))?;
        counts.push(count);
    }
    if counts.is_empty() {
        return Err(format!("function {name:?} has no per-minute counts"));
    }
    Ok((name.to_owned(), counts))
}

impl ArrivalProcess for AzureTraceProcess {
    fn refill(&mut self, horizon: SimTime, max: usize, out: &mut Vec<SimTime>) -> usize {
        let mut pushed = 0usize;
        while pushed < max {
            while self.minute < self.counts.len() && self.index >= self.counts[self.minute] {
                self.minute += 1;
                self.index = 0;
            }
            if self.minute >= self.counts.len() {
                break;
            }
            let count = f64::from(self.counts[self.minute]);
            let offset = (f64::from(self.index) + 0.5) * 60.0 / count;
            let instant = SimTime::from_secs_f64(self.minute as f64 * 60.0 + offset);
            if instant >= horizon {
                break;
            }
            out.push(instant);
            self.index += 1;
            pushed += 1;
        }
        pushed
    }

    fn mean_rate(&self) -> f64 {
        self.mean
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::io::Write as _;

    /// Writes a deterministic per-test fixture under the workspace target
    /// directory and returns its path.
    fn fixture(name: &str, contents: &str) -> PathBuf {
        let dir = Path::new(env!("CARGO_MANIFEST_DIR")).join("../../target/trace-fixtures");
        std::fs::create_dir_all(&dir).expect("fixture dir");
        let path = dir.join(name);
        let mut file = File::create(&path).expect("fixture file");
        file.write_all(contents.as_bytes()).expect("fixture contents");
        path
    }

    fn secs(arrivals: &[SimTime]) -> Vec<f64> {
        arrivals.iter().map(|t| t.as_secs_f64()).collect()
    }

    #[test]
    fn alibaba_reads_and_filters_rows() {
        let path = fixture(
            "alibaba-basic.csv",
            "time_s,function\n0.5,alpha\n1.0,beta\n2.5,alpha\n# comment\n4.0,alpha\n",
        );
        let mut p = AlibabaTraceProcess::open(&path, Some("alpha"), 4).unwrap();
        assert_eq!(secs(&p.generate(SimTime::from_secs(10))), vec![0.5, 2.5, 4.0]);

        let mut all = AlibabaTraceProcess::open(&path, None, 4).unwrap();
        assert_eq!(all.generate(SimTime::from_secs(10)).len(), 4);
    }

    #[test]
    fn alibaba_malformed_row_names_file_and_line() {
        let path = fixture("alibaba-bad.csv", "0.5,alpha\n1.0,beta\nnot-a-time,alpha\n");
        let err = AlibabaTraceProcess::open(&path, None, 4).unwrap_err();
        let text = err.to_string();
        assert!(text.contains("alibaba-bad.csv:3"), "error must name file:line, got {text}");
        assert!(text.contains("not-a-time"), "error must quote the bad field, got {text}");
    }

    #[test]
    fn alibaba_sorts_disorder_within_the_window() {
        let path = fixture("alibaba-shuffled.csv", "2.0,f\n1.0,f\n3.0,f\n2.5,f\n5.0,f\n");
        let mut p = AlibabaTraceProcess::open(&path, None, 4).unwrap();
        assert_eq!(secs(&p.generate(SimTime::from_secs(10))), vec![1.0, 2.0, 2.5, 3.0, 5.0]);
    }

    #[test]
    fn alibaba_rejects_disorder_beyond_the_window() {
        // With a window of 2 the 0.5 row arrives three rows after rows
        // that already had to be emitted.
        let path = fixture("alibaba-late.csv", "2.0,f\n3.0,f\n4.0,f\n5.0,f\n0.5,f\n");
        let err = AlibabaTraceProcess::open(&path, None, 2).unwrap_err();
        match &err {
            ReaderError::OutOfOrder { line, window, .. } => {
                assert_eq!((*line, *window), (5, 2), "got {err}");
            }
            other => panic!("expected OutOfOrder, got {other:?}"),
        }
    }

    #[test]
    fn alibaba_missing_function_is_reported() {
        let path = fixture("alibaba-missing.csv", "1.0,alpha\n");
        let err = AlibabaTraceProcess::open(&path, Some("nope"), 4).unwrap_err();
        assert!(matches!(err, ReaderError::FunctionNotFound { .. }), "got {err}");
    }

    #[test]
    fn alibaba_refill_streams_in_bounded_chunks() {
        let rows: String = (0..200).map(|i| format!("{}.25,f\n", i)).collect();
        let path = fixture("alibaba-chunks.csv", &rows);
        let end = SimTime::from_secs(500);
        let one_shot = AlibabaTraceProcess::open(&path, None, 8).unwrap().generate(end);
        assert_eq!(one_shot.len(), 200);
        let mut p = AlibabaTraceProcess::open(&path, None, 8).unwrap();
        let mut got = Vec::new();
        while p.refill(end, 7, &mut got) == 7 {}
        assert_eq!(got, one_shot);
    }

    #[test]
    fn azure_expands_minute_counts_at_midpoints() {
        let path = fixture("azure-basic.csv", "function,m0,m1,m2\nalpha,2,0,1\nbeta,1,1,1\n");
        let mut p = AzureTraceProcess::open(&path, Some("alpha")).unwrap();
        assert_eq!(secs(&p.generate(SimTime::from_secs(600))), vec![15.0, 45.0, 150.0]);
        assert!((p.mean_rate() - 3.0 / 180.0).abs() < 1e-12);
    }

    #[test]
    fn azure_defaults_to_the_first_row_and_respects_horizons() {
        let path = fixture("azure-first.csv", "alpha,1,1\nbeta,9,9\n");
        let mut p = AzureTraceProcess::open(&path, None).unwrap();
        assert_eq!(secs(&p.generate(SimTime::from_secs(1))), Vec::<f64>::new());
        assert_eq!(secs(&p.generate(SimTime::from_secs(60))), vec![30.0]);
        assert_eq!(secs(&p.generate(SimTime::from_secs(600))), vec![90.0]);
    }

    #[test]
    fn azure_rejects_duplicates_and_bad_counts() {
        let dup = fixture("azure-dup.csv", "alpha,1,2\nalpha,3,4\n");
        let err = AzureTraceProcess::open(&dup, Some("alpha")).unwrap_err();
        assert!(matches!(err, ReaderError::DuplicateFunction { line: 2, .. }), "got {err}");

        let bad = fixture("azure-bad.csv", "alpha,1,two,3\n");
        let err = AzureTraceProcess::open(&bad, None).unwrap_err();
        let text = err.to_string();
        assert!(text.contains("azure-bad.csv:1"), "error must name file:line, got {text}");
    }

    #[test]
    fn open_trace_dispatches_on_format() {
        let path = fixture("dispatch.csv", "1.0,f\n2.0,f\n");
        let mut p = open_trace(&path, TraceFormat::Alibaba, None).unwrap();
        assert_eq!(p.generate(SimTime::from_secs(10)).len(), 2);
        assert_eq!(TraceFormat::parse("azure"), Some(TraceFormat::Azure));
        assert_eq!(TraceFormat::parse("csv"), None);
    }
}

//! Request arrival-process generators for the Dilu reproduction.
//!
//! The paper evaluates under Poisson arrivals, Gamma arrivals with varying
//! coefficient of variation (CV, after FastServe), and three trace shapes
//! from Azure Functions' production characterization — *Bursty*, *Periodic*
//! and *Sporadic* (after INFless / FaaSwap). Real traces are not available
//! offline, so [`RateTrace`] synthesises the same shapes as piecewise
//! request-rate functions sampled by a non-homogeneous Poisson process.
//!
//! All generators are deterministic given a seed.
//!
//! # Examples
//!
//! ```
//! use dilu_workload::{ArrivalProcess, PoissonProcess};
//! use dilu_sim::SimTime;
//!
//! let mut p = PoissonProcess::new(20.0, 42);
//! let arrivals = p.generate(SimTime::from_secs(10));
//! let rate = arrivals.len() as f64 / 10.0;
//! assert!((rate - 20.0).abs() < 5.0);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod arrival;
mod config;
mod reader;
mod synth;
mod traces;

pub use arrival::{ArrivalProcess, GammaProcess, PoissonProcess, ReplayProcess};
pub use config::{ArrivalSpec, ArrivalSpecError, PROCESS_NAMES};
pub use reader::{
    open_trace, AlibabaTraceProcess, AzureTraceProcess, ReaderError, TraceFormat,
    DEFAULT_REORDER_WINDOW,
};
pub use synth::SynthProcess;
pub use traces::{RateTrace, TraceKind, TraceProcess};

//! Stationary arrival processes: Poisson, Gamma(CV), replay.

use dilu_sim::rng::{component_rng, sample_exponential, sample_gamma, SimRng};
use dilu_sim::SimTime;

/// Generates request arrival instants up to a horizon.
///
/// Implementations are stateful: every pull continues the same stream, so
/// arrivals can be consumed either in one shot ([`generate`]) or
/// incrementally in bounded chunks ([`refill`]) with identical results.
///
/// [`generate`]: ArrivalProcess::generate
/// [`refill`]: ArrivalProcess::refill
pub trait ArrivalProcess {
    /// Appends up to `max` arrival instants strictly before `horizon` onto
    /// `out`, continuing the stream from the previous pull, and returns the
    /// number appended.
    ///
    /// Returning fewer than `max` instants means the stream has nothing
    /// further before `horizon`: the caller may treat the process as
    /// exhausted up to that horizon. The emitted instants are sorted
    /// ascending and **must not depend on how pulls are chunked** — any
    /// sequence of `refill` calls with non-decreasing horizons yields the
    /// same concatenated stream as a single full-horizon pull. Stochastic
    /// implementations keep a drawn-but-over-horizon instant pending
    /// instead of discarding it, so the RNG consumption order is
    /// chunk-invariant too.
    fn refill(&mut self, horizon: SimTime, max: usize, out: &mut Vec<SimTime>) -> usize;

    /// All remaining arrivals in `[0, horizon)`, sorted ascending.
    ///
    /// Equivalent to an unbounded [`refill`](ArrivalProcess::refill); most
    /// one-shot callers generate once for the full experiment horizon.
    fn generate(&mut self, horizon: SimTime) -> Vec<SimTime> {
        let mut out = Vec::new();
        self.refill(horizon, usize::MAX, &mut out);
        out
    }

    /// The long-run mean request rate in requests per second.
    fn mean_rate(&self) -> f64;
}

/// A homogeneous Poisson process (exponential inter-arrivals).
///
/// Used by the paper for steady inference workloads (after BATCH/DistServe).
#[derive(Debug, Clone)]
pub struct PoissonProcess {
    rate_rps: f64,
    rng: SimRng,
    /// Last drawn instant (seconds); the stream cursor.
    cursor_s: f64,
    /// `true` when `cursor_s` was drawn but not yet emitted (it landed at
    /// or past the horizon of the previous pull).
    pending: bool,
}

impl PoissonProcess {
    /// Creates a Poisson process with `rate_rps` requests per second.
    ///
    /// # Panics
    ///
    /// Panics if `rate_rps` is not strictly positive and finite.
    pub fn new(rate_rps: f64, seed: u64) -> Self {
        assert!(rate_rps.is_finite() && rate_rps > 0.0, "rate must be positive");
        PoissonProcess {
            rate_rps,
            rng: component_rng(seed, "poisson-arrivals"),
            cursor_s: 0.0,
            pending: false,
        }
    }
}

impl ArrivalProcess for PoissonProcess {
    fn refill(&mut self, horizon: SimTime, max: usize, out: &mut Vec<SimTime>) -> usize {
        let horizon_s = horizon.as_secs_f64();
        let mut pushed = 0usize;
        while pushed < max {
            if !self.pending {
                self.cursor_s += sample_exponential(&mut self.rng, self.rate_rps);
                self.pending = true;
            }
            if self.cursor_s >= horizon_s {
                break;
            }
            out.push(SimTime::from_secs_f64(self.cursor_s));
            self.pending = false;
            pushed += 1;
        }
        pushed
    }

    fn mean_rate(&self) -> f64 {
        self.rate_rps
    }
}

/// A renewal process with Gamma-distributed inter-arrivals of a chosen
/// coefficient of variation.
///
/// CV = 1 recovers Poisson; larger CVs produce the bursty arrivals of the
/// paper's Fig. 10 sweep (after FastServe).
#[derive(Debug, Clone)]
pub struct GammaProcess {
    rate_rps: f64,
    cv: f64,
    rng: SimRng,
    cursor_s: f64,
    pending: bool,
}

impl GammaProcess {
    /// Creates a Gamma process with mean `rate_rps` and coefficient of
    /// variation `cv`.
    ///
    /// # Panics
    ///
    /// Panics if `rate_rps` or `cv` is not strictly positive and finite.
    pub fn new(rate_rps: f64, cv: f64, seed: u64) -> Self {
        assert!(rate_rps.is_finite() && rate_rps > 0.0, "rate must be positive");
        assert!(cv.is_finite() && cv > 0.0, "cv must be positive");
        GammaProcess {
            rate_rps,
            cv,
            rng: component_rng(seed, "gamma-arrivals"),
            cursor_s: 0.0,
            pending: false,
        }
    }

    /// The configured coefficient of variation.
    pub fn cv(&self) -> f64 {
        self.cv
    }
}

impl ArrivalProcess for GammaProcess {
    fn refill(&mut self, horizon: SimTime, max: usize, out: &mut Vec<SimTime>) -> usize {
        // Inter-arrival Gamma(shape=1/cv², scale=cv²/rate) has mean 1/rate
        // and coefficient of variation cv.
        let shape = 1.0 / (self.cv * self.cv);
        let scale = self.cv * self.cv / self.rate_rps;
        let horizon_s = horizon.as_secs_f64();
        let mut pushed = 0usize;
        while pushed < max {
            if !self.pending {
                self.cursor_s += sample_gamma(&mut self.rng, shape, scale);
                self.pending = true;
            }
            if self.cursor_s >= horizon_s {
                break;
            }
            out.push(SimTime::from_secs_f64(self.cursor_s));
            self.pending = false;
            pushed += 1;
        }
        pushed
    }

    fn mean_rate(&self) -> f64 {
        self.rate_rps
    }
}

/// Replays an explicit list of arrival instants.
///
/// Input hygiene is part of the contract (config files and fuzzers hand
/// this process arbitrary user data): **unsorted input is sorted on
/// construction** — never rejected — and **duplicate instants are
/// preserved**, modelling two requests landing at the same moment. Like
/// every [`ArrivalProcess`], repeated pulls continue the stream: instants
/// already emitted for an earlier horizon are not emitted again.
#[derive(Debug, Clone)]
pub struct ReplayProcess {
    arrivals: Vec<SimTime>,
    /// Index of the first instant not yet emitted (stream continuation).
    cursor: usize,
}

impl ReplayProcess {
    /// Creates a replay process; arrivals are sorted on construction and
    /// duplicates are kept.
    pub fn new<I: IntoIterator<Item = SimTime>>(arrivals: I) -> Self {
        let mut arrivals: Vec<SimTime> = arrivals.into_iter().collect();
        arrivals.sort_unstable();
        ReplayProcess { arrivals, cursor: 0 }
    }
}

impl ArrivalProcess for ReplayProcess {
    fn refill(&mut self, horizon: SimTime, max: usize, out: &mut Vec<SimTime>) -> usize {
        let start = self.cursor;
        while self.cursor < self.arrivals.len()
            && self.cursor - start < max
            && self.arrivals[self.cursor] < horizon
        {
            out.push(self.arrivals[self.cursor]);
            self.cursor += 1;
        }
        self.cursor - start
    }

    fn mean_rate(&self) -> f64 {
        match (self.arrivals.first(), self.arrivals.last()) {
            (Some(&first), Some(&last)) if last > first => {
                self.arrivals.len() as f64 / (last - first).as_secs_f64()
            }
            _ => 0.0,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn cv_of_interarrivals(arrivals: &[SimTime]) -> f64 {
        let gaps: Vec<f64> = arrivals.windows(2).map(|w| (w[1] - w[0]).as_secs_f64()).collect();
        let mean = gaps.iter().sum::<f64>() / gaps.len() as f64;
        let var = gaps.iter().map(|g| (g - mean).powi(2)).sum::<f64>() / gaps.len() as f64;
        var.sqrt() / mean
    }

    /// Pulls the whole stream before `end` through bounded refills of
    /// `window` instants, the way the cluster's streaming arrival plane
    /// does.
    fn drain_chunked(p: &mut dyn ArrivalProcess, end: SimTime, window: usize) -> Vec<SimTime> {
        let mut all = Vec::new();
        loop {
            let got = p.refill(end, window, &mut all);
            if got < window {
                return all;
            }
        }
    }

    #[test]
    fn poisson_hits_mean_rate() {
        let mut p = PoissonProcess::new(50.0, 1);
        let arrivals = p.generate(SimTime::from_secs(100));
        let rate = arrivals.len() as f64 / 100.0;
        assert!((rate - 50.0).abs() < 3.0, "rate {rate}");
    }

    #[test]
    fn poisson_is_sorted_and_seeded() {
        let a = PoissonProcess::new(10.0, 7).generate(SimTime::from_secs(10));
        let b = PoissonProcess::new(10.0, 7).generate(SimTime::from_secs(10));
        assert_eq!(a, b);
        assert!(a.windows(2).all(|w| w[0] <= w[1]));
    }

    #[test]
    fn gamma_cv_one_looks_poisson() {
        let mut g = GammaProcess::new(40.0, 1.0, 3);
        let arrivals = g.generate(SimTime::from_secs(200));
        let cv = cv_of_interarrivals(&arrivals);
        assert!((cv - 1.0).abs() < 0.1, "cv {cv}");
    }

    #[test]
    fn gamma_high_cv_is_bursty() {
        let mut g = GammaProcess::new(40.0, 4.0, 5);
        let arrivals = g.generate(SimTime::from_secs(400));
        let cv = cv_of_interarrivals(&arrivals);
        assert!(cv > 2.5, "cv {cv} should reflect burstiness");
        let rate = arrivals.len() as f64 / 400.0;
        assert!((rate - 40.0).abs() < 8.0, "rate {rate}");
    }

    #[test]
    fn replay_filters_by_horizon() {
        let mut r = ReplayProcess::new([
            SimTime::from_secs(5),
            SimTime::from_secs(1),
            SimTime::from_secs(9),
        ]);
        let got = r.generate(SimTime::from_secs(6));
        assert_eq!(got, vec![SimTime::from_secs(1), SimTime::from_secs(5)]);
    }

    #[test]
    #[should_panic(expected = "positive")]
    fn zero_rate_rejected() {
        PoissonProcess::new(0.0, 0);
    }

    /// Empirical moments at fuzzer scale (n ≥ 10⁵): the Gamma renewal
    /// process must deliver both its configured mean rate and its
    /// coefficient of variation within tight tolerance.
    #[test]
    fn gamma_statistics_hold_at_1e5_samples() {
        for (cv, seed) in [(0.5, 11), (1.0, 12), (3.0, 13)] {
            let mut g = GammaProcess::new(500.0, cv, seed);
            let arrivals = g.generate(SimTime::from_secs(250));
            assert!(arrivals.len() >= 100_000, "need n ≥ 1e5, got {}", arrivals.len());
            let rate = arrivals.len() as f64 / 250.0;
            assert!(
                (rate - 500.0).abs() / 500.0 < 0.02,
                "cv {cv}: empirical rate {rate} off by more than 2%"
            );
            let empirical_cv = cv_of_interarrivals(&arrivals);
            assert!(
                (empirical_cv - cv).abs() / cv < 0.05,
                "cv {cv}: empirical cv {empirical_cv} off by more than 5%"
            );
        }
    }

    /// Same bar for Poisson: rate within 1%, CV ≈ 1.
    #[test]
    fn poisson_statistics_hold_at_1e5_samples() {
        let mut p = PoissonProcess::new(500.0, 21);
        let arrivals = p.generate(SimTime::from_secs(250));
        assert!(arrivals.len() >= 100_000);
        let rate = arrivals.len() as f64 / 250.0;
        assert!((rate - 500.0).abs() / 500.0 < 0.01, "rate {rate}");
        let cv = cv_of_interarrivals(&arrivals);
        assert!((cv - 1.0).abs() < 0.02, "cv {cv}");
    }

    /// The documented input-hygiene contract: unsorted input is sorted
    /// (not rejected) and duplicate instants are preserved.
    #[test]
    fn replay_sorts_unsorted_input_and_keeps_duplicates() {
        let t = |s: u64| SimTime::from_secs(s);
        let mut r = ReplayProcess::new([t(5), t(1), t(5), t(3), t(1)]);
        assert_eq!(r.generate(t(10)), vec![t(1), t(1), t(3), t(5), t(5)]);
    }

    /// Repeated `generate` calls continue the stream (the trait contract)
    /// instead of re-emitting instants already handed out.
    #[test]
    fn replay_generate_continues_the_stream() {
        let t = |s: u64| SimTime::from_secs(s);
        let mut r = ReplayProcess::new([t(1), t(3), t(5), t(7)]);
        assert_eq!(r.generate(t(4)), vec![t(1), t(3)]);
        assert_eq!(r.generate(t(4)), Vec::<SimTime>::new(), "no duplicates on re-query");
        assert_eq!(r.generate(t(8)), vec![t(5), t(7)], "later horizon resumes the stream");
        assert_eq!(r.generate(t(100)), Vec::<SimTime>::new());
    }

    #[test]
    fn replay_mean_rate_survives_degenerate_inputs() {
        assert_eq!(ReplayProcess::new([]).mean_rate(), 0.0);
        let t = SimTime::from_secs(2);
        assert_eq!(ReplayProcess::new([t, t, t]).mean_rate(), 0.0, "zero span has no rate");
    }

    /// The chunk-invariance contract behind the streaming arrival plane:
    /// pulling through bounded windows yields the exact stream of a single
    /// full-horizon pull, for every process family.
    #[test]
    fn bounded_refills_match_one_shot_generation() {
        let end = SimTime::from_secs(120);
        for window in [1usize, 7, 64] {
            let one_shot = PoissonProcess::new(35.0, 9).generate(end);
            let mut p = PoissonProcess::new(35.0, 9);
            assert_eq!(drain_chunked(&mut p, end, window), one_shot, "poisson window {window}");

            let one_shot = GammaProcess::new(25.0, 3.0, 9).generate(end);
            let mut g = GammaProcess::new(25.0, 3.0, 9);
            assert_eq!(drain_chunked(&mut g, end, window), one_shot, "gamma window {window}");

            let times: Vec<SimTime> = (0..50).map(|i| SimTime::from_millis(i * 731)).collect();
            let one_shot = ReplayProcess::new(times.clone()).generate(end);
            let mut r = ReplayProcess::new(times);
            assert_eq!(drain_chunked(&mut r, end, window), one_shot, "replay window {window}");
        }
    }

    /// Growing-horizon pulls are also chunk-invariant: an instant drawn
    /// past one horizon is held pending and emitted by the next pull
    /// instead of being redrawn.
    #[test]
    fn growing_horizons_do_not_redraw_pending_instants() {
        let full = PoissonProcess::new(12.0, 4).generate(SimTime::from_secs(90));
        let mut p = PoissonProcess::new(12.0, 4);
        let mut got = Vec::new();
        for s in [10u64, 30, 31, 60, 90] {
            p.refill(SimTime::from_secs(s), usize::MAX, &mut got);
        }
        assert_eq!(got, full);
    }

    #[test]
    fn refill_respects_the_cap() {
        let mut p = PoissonProcess::new(100.0, 2);
        let mut out = Vec::new();
        assert_eq!(p.refill(SimTime::from_secs(60), 3, &mut out), 3);
        assert_eq!(out.len(), 3);
        let mut rest = Vec::new();
        p.refill(SimTime::from_secs(60), usize::MAX, &mut rest);
        let mut whole = PoissonProcess::new(100.0, 2).generate(SimTime::from_secs(60));
        let tail = whole.split_off(3);
        assert_eq!(out, whole);
        assert_eq!(rest, tail);
    }
}

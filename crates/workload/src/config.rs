//! Serde-backed arrival-process configuration.
//!
//! [`ArrivalSpec`] is the declarative form of every arrival process this
//! crate offers, deserializable from scenario config files:
//!
//! ```toml
//! arrivals = { process = "poisson", rate = 25.0 }
//! arrivals = { process = "gamma", rate = 40.0, cv = 4.0, seed = 3 }
//! arrivals = { process = "trace", shape = "bursty", rate = 10.0, scale = 5.0 }
//! arrivals = { process = "replay", times = [0.5, 1.0, 2.5] }
//! arrivals = { process = "synth", rate = 5.0, amp = 0.4, period = 86400.0 }
//! arrivals = { process = "file", path = "trace.csv", format = "alibaba" }
//! ```
//!
//! [`ArrivalSpec::build`] turns the spec into a boxed [`ArrivalProcess`].

use dilu_sim::{SimDuration, SimTime};
use serde::{Deserialize, Serialize};

use crate::reader::open_trace;
use crate::{
    ArrivalProcess, GammaProcess, PoissonProcess, RateTrace, ReplayProcess, SynthProcess,
    TraceFormat, TraceKind, TraceProcess,
};

/// The process names [`ArrivalSpec`] understands.
pub const PROCESS_NAMES: [&str; 6] = ["poisson", "gamma", "trace", "replay", "synth", "file"];

/// A declarative description of an arrival process.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct ArrivalSpec {
    /// Process family: `poisson`, `gamma`, `trace`, `replay`, `synth`, or
    /// `file`.
    pub process: String,
    /// Mean request rate in RPS (`poisson`, `gamma`) or the base rate of
    /// a synthesized intensity (`trace`, `synth`).
    pub rate: Option<f64>,
    /// Coefficient of variation of inter-arrival gaps (`gamma`).
    pub cv: Option<f64>,
    /// Trace shape: `bursty`, `periodic`, or `sporadic` (`trace`).
    pub shape: Option<String>,
    /// Burst amplitude multiplier over the base rate (`trace`, `synth`).
    pub scale: Option<f64>,
    /// Explicit arrival instants in seconds (`replay`).
    pub times: Option<Vec<f64>>,
    /// RNG seed; falls back to the scenario seed when absent.
    pub seed: Option<u64>,
    /// Trace file to read (`file`).
    pub path: Option<String>,
    /// Trace file format: `alibaba` or `azure` (`file`).
    pub format: Option<String>,
    /// Function whose rows to read from the trace file (`file`); all
    /// Alibaba rows / the first Azure row when absent.
    pub function: Option<String>,
    /// Diurnal amplitude in `[0, 1)` (`synth`; default 0.5).
    pub amp: Option<f64>,
    /// Diurnal period in seconds (`synth`; default 86 400 — one day).
    pub period: Option<f64>,
    /// Diurnal phase offset in seconds (`synth`; default 0).
    pub phase: Option<f64>,
}

/// An invalid [`ArrivalSpec`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ArrivalSpecError(String);

impl std::fmt::Display for ArrivalSpecError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "invalid arrival spec: {}", self.0)
    }
}

impl std::error::Error for ArrivalSpecError {}

impl ArrivalSpec {
    /// A Poisson spec at `rate` RPS.
    pub fn poisson(rate: f64) -> Self {
        ArrivalSpec {
            process: "poisson".into(),
            rate: Some(rate),
            cv: None,
            shape: None,
            scale: None,
            times: None,
            seed: None,
            path: None,
            format: None,
            function: None,
            amp: None,
            period: None,
            phase: None,
        }
    }

    /// A Gamma-renewal spec at `rate` RPS with coefficient of variation `cv`.
    pub fn gamma(rate: f64, cv: f64) -> Self {
        ArrivalSpec { cv: Some(cv), ..ArrivalSpec::poisson(rate) }.with_process("gamma")
    }

    /// A synthesized Azure-shape trace spec (`shape` as in [`TraceKind`]).
    pub fn trace(shape: TraceKind, base_rate: f64, scale: f64) -> Self {
        ArrivalSpec {
            shape: Some(shape.name().to_ascii_lowercase()),
            scale: Some(scale),
            ..ArrivalSpec::poisson(base_rate)
        }
        .with_process("trace")
    }

    /// A replay spec over explicit arrival instants in seconds.
    pub fn replay(times: Vec<f64>) -> Self {
        ArrivalSpec { rate: None, times: Some(times), ..ArrivalSpec::poisson(1.0) }
            .with_process("replay")
    }

    /// A synthesized production-day spec: diurnal sinusoid of amplitude
    /// `amp` over `base_rate` RPS with lazily-drawn burst windows.
    pub fn synth(base_rate: f64, amp: f64) -> Self {
        ArrivalSpec { amp: Some(amp), ..ArrivalSpec::poisson(base_rate) }.with_process("synth")
    }

    /// A trace-file spec reading `path` in `format` (`alibaba`/`azure`).
    pub fn file(path: &str, format: &str) -> Self {
        ArrivalSpec {
            rate: None,
            path: Some(path.to_owned()),
            format: Some(format.to_owned()),
            ..ArrivalSpec::poisson(1.0)
        }
        .with_process("file")
    }

    /// Overrides the seed.
    pub fn with_seed(mut self, seed: u64) -> Self {
        self.seed = Some(seed);
        self
    }

    fn with_process(mut self, process: &str) -> Self {
        self.process = process.into();
        self
    }

    fn rate(&self) -> Result<f64, ArrivalSpecError> {
        let rate = self
            .rate
            .ok_or_else(|| ArrivalSpecError(format!("`{}` needs a `rate`", self.process)))?;
        if !(rate.is_finite() && rate > 0.0) {
            return Err(ArrivalSpecError(format!("rate must be positive, got {rate}")));
        }
        Ok(rate)
    }

    /// Builds the arrival process. `default_seed` is used when the spec
    /// carries no seed of its own; `horizon` sizes synthesized traces.
    pub fn build(
        &self,
        default_seed: u64,
        horizon: SimDuration,
    ) -> Result<Box<dyn ArrivalProcess>, ArrivalSpecError> {
        let seed = self.seed.unwrap_or(default_seed);
        match self.process.as_str() {
            "poisson" => Ok(Box::new(PoissonProcess::new(self.rate()?, seed))),
            "gamma" => {
                let cv = self.cv.ok_or_else(|| ArrivalSpecError("`gamma` needs a `cv`".into()))?;
                if !(cv.is_finite() && cv > 0.0) {
                    return Err(ArrivalSpecError(format!("cv must be positive, got {cv}")));
                }
                Ok(Box::new(GammaProcess::new(self.rate()?, cv, seed)))
            }
            "trace" => {
                let shape = self
                    .shape
                    .as_deref()
                    .ok_or_else(|| ArrivalSpecError("`trace` needs a `shape`".into()))?;
                let kind = TraceKind::ALL
                    .into_iter()
                    .find(|k| k.name().eq_ignore_ascii_case(shape))
                    .ok_or_else(|| {
                        ArrivalSpecError(format!(
                            "unknown trace shape `{shape}` (known: bursty, periodic, sporadic)"
                        ))
                    })?;
                let scale = self.scale.unwrap_or(4.0);
                let trace = RateTrace::synthesize(kind, self.rate()?, scale, horizon, seed);
                Ok(Box::new(TraceProcess::new(trace, seed)))
            }
            "replay" => {
                let times = self
                    .times
                    .as_ref()
                    .ok_or_else(|| ArrivalSpecError("`replay` needs `times`".into()))?;
                if times.iter().any(|&t| !t.is_finite() || t < 0.0) {
                    return Err(ArrivalSpecError("replay times must be non-negative".into()));
                }
                Ok(Box::new(ReplayProcess::new(times.iter().map(|&t| SimTime::from_secs_f64(t)))))
            }
            "synth" => {
                let amp = self.amp.unwrap_or(0.5);
                if !(amp.is_finite() && (0.0..1.0).contains(&amp)) {
                    return Err(ArrivalSpecError(format!("amp must be in [0, 1), got {amp}")));
                }
                let period = self.period.unwrap_or(86_400.0);
                if !(period.is_finite() && period > 0.0) {
                    return Err(ArrivalSpecError(format!("period must be positive, got {period}")));
                }
                let phase = self.phase.unwrap_or(0.0);
                if !phase.is_finite() {
                    return Err(ArrivalSpecError(format!("phase must be finite, got {phase}")));
                }
                let scale = self.scale.unwrap_or(4.0);
                if !(scale.is_finite() && scale >= 1.0) {
                    return Err(ArrivalSpecError(format!("scale must be >= 1, got {scale}")));
                }
                Ok(Box::new(SynthProcess::new(self.rate()?, amp, period, phase, scale, seed)))
            }
            "file" => {
                let path = self
                    .path
                    .as_deref()
                    .ok_or_else(|| ArrivalSpecError("`file` needs a `path`".into()))?;
                let format = self
                    .format
                    .as_deref()
                    .ok_or_else(|| ArrivalSpecError("`file` needs a `format`".into()))?;
                let format = TraceFormat::parse(format).ok_or_else(|| {
                    ArrivalSpecError(format!(
                        "unknown trace format `{format}` (known: {})",
                        TraceFormat::NAMES.join(", ")
                    ))
                })?;
                open_trace(std::path::Path::new(path), format, self.function.as_deref())
                    .map_err(|e| ArrivalSpecError(format!("trace file: {e}")))
            }
            other => Err(ArrivalSpecError(format!(
                "unknown process `{other}` (known: {})",
                PROCESS_NAMES.join(", ")
            ))),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn builds_each_process_kind() {
        let horizon = SimDuration::from_secs(30);
        let mut p = ArrivalSpec::poisson(20.0).build(7, horizon).unwrap();
        assert!((p.mean_rate() - 20.0).abs() < 1e-9);
        assert!(!p.generate(SimTime::ZERO + horizon).is_empty());

        let mut g = ArrivalSpec::gamma(10.0, 4.0).with_seed(3).build(7, horizon).unwrap();
        assert!(!g.generate(SimTime::ZERO + horizon).is_empty());

        let mut t = ArrivalSpec::trace(TraceKind::Periodic, 10.0, 2.0).build(7, horizon).unwrap();
        assert!(!t.generate(SimTime::ZERO + horizon).is_empty());

        let mut r = ArrivalSpec::replay(vec![0.5, 1.5]).build(7, horizon).unwrap();
        assert_eq!(r.generate(SimTime::ZERO + horizon).len(), 2);
    }

    #[test]
    fn seed_falls_back_to_default() {
        let horizon = SimDuration::from_secs(20);
        let a = ArrivalSpec::poisson(15.0)
            .build(11, horizon)
            .unwrap()
            .generate(SimTime::ZERO + horizon);
        let b = ArrivalSpec::poisson(15.0)
            .build(11, horizon)
            .unwrap()
            .generate(SimTime::ZERO + horizon);
        let c = ArrivalSpec::poisson(15.0)
            .with_seed(12)
            .build(11, horizon)
            .unwrap()
            .generate(SimTime::ZERO + horizon);
        assert_eq!(a, b);
        assert_ne!(a, c);
    }

    #[test]
    fn replay_spec_accepts_unsorted_and_duplicate_times() {
        let horizon = SimDuration::from_secs(10);
        // Unsorted with a duplicate: sorted on construction, duplicate kept.
        let mut r = ArrivalSpec::replay(vec![4.0, 1.0, 4.0, 2.5]).build(0, horizon).unwrap();
        let got = r.generate(SimTime::ZERO + horizon);
        assert_eq!(
            got,
            vec![
                SimTime::from_secs_f64(1.0),
                SimTime::from_secs_f64(2.5),
                SimTime::from_secs_f64(4.0),
                SimTime::from_secs_f64(4.0),
            ]
        );
        // Negative or non-finite instants stay typed errors.
        assert!(ArrivalSpec::replay(vec![-1.0]).build(0, horizon).is_err());
        assert!(ArrivalSpec::replay(vec![f64::NAN]).build(0, horizon).is_err());
    }

    #[test]
    fn builds_synth_and_file_processes() {
        let horizon = SimDuration::from_secs(600);
        let mut s = ArrivalSpec::synth(10.0, 0.3).build(7, horizon).unwrap();
        assert!(!s.generate(SimTime::ZERO + horizon).is_empty());

        let path = concat!(env!("CARGO_MANIFEST_DIR"), "/../../examples/traces/alibaba-sample.csv");
        let mut f = ArrivalSpec::file(path, "alibaba").build(7, horizon).unwrap();
        assert!(!f.generate(SimTime::ZERO + horizon).is_empty());

        let azure = concat!(env!("CARGO_MANIFEST_DIR"), "/../../examples/traces/azure-sample.csv");
        let mut spec = ArrivalSpec::file(azure, "azure");
        spec.function = Some("fn-a".into());
        assert!(!spec.build(7, horizon).unwrap().generate(SimTime::ZERO + horizon).is_empty());
    }

    #[test]
    fn synth_and_file_misuse_is_reported_not_panicked() {
        let horizon = SimDuration::from_secs(10);
        let mut bad_amp = ArrivalSpec::synth(5.0, 1.5);
        assert!(bad_amp.build(0, horizon).err().unwrap().to_string().contains("amp"));
        bad_amp.amp = Some(0.5);
        bad_amp.period = Some(0.0);
        assert!(bad_amp.build(0, horizon).err().unwrap().to_string().contains("period"));

        let err = ArrivalSpec::file("does-not-exist.csv", "csv").build(0, horizon).err().unwrap();
        assert!(err.to_string().contains("alibaba, azure"), "{err}");
        let err =
            ArrivalSpec::file("does-not-exist.csv", "alibaba").build(0, horizon).err().unwrap();
        assert!(err.to_string().contains("does-not-exist.csv"), "{err}");
    }

    #[test]
    fn misuse_is_reported_not_panicked() {
        let horizon = SimDuration::from_secs(10);
        assert!(ArrivalSpec::poisson(-1.0).build(0, horizon).is_err());
        let mut no_cv = ArrivalSpec::poisson(5.0);
        no_cv.process = "gamma".into();
        assert!(no_cv.build(0, horizon).is_err());
        let mut unknown = ArrivalSpec::poisson(5.0);
        unknown.process = "weibull".into();
        let err = unknown.build(0, horizon).err().expect("unknown process must fail");
        assert!(err.to_string().contains("weibull"));
    }
}

//! Deterministic production-trace synthesizer.
//!
//! Fleet-scale scenarios (10k+ functions over a 24 h day) cannot afford
//! the per-second [`RateTrace`](crate::RateTrace) vectors the Table-3
//! shapes use — 10k functions × 86 400 s of `f64` is multiple gigabytes
//! before a single request is simulated. [`SynthProcess`] instead keeps
//! the intensity **analytic**: a diurnal sinusoid over a base rate,
//! multiplied by burst windows that are drawn lazily from a dedicated RNG
//! as simulated time advances. Memory is O(1) per function regardless of
//! horizon or request count, and the stream is chunk-invariant so the
//! cluster's bounded arrival windows can pull from it incrementally.

use dilu_sim::rng::{component_rng, sample_exponential, SimRng};
use dilu_sim::SimTime;
use rand::Rng;

use crate::ArrivalProcess;

/// Minimum idle gap between burst windows, seconds.
const BURST_GAP_MIN_S: f64 = 120.0;
/// Mean of the exponential part of the inter-burst gap, seconds.
const BURST_GAP_MEAN_S: f64 = 480.0;
/// Burst window length bounds, seconds.
const BURST_LEN_MIN_S: f64 = 30.0;
const BURST_LEN_MAX_S: f64 = 90.0;

/// The long-run fraction of time spent inside a burst window:
/// mean length / (mean gap + mean length).
const BURST_DUTY: f64 = ((BURST_LEN_MIN_S + BURST_LEN_MAX_S) / 2.0)
    / (BURST_GAP_MIN_S + BURST_GAP_MEAN_S + (BURST_LEN_MIN_S + BURST_LEN_MAX_S) / 2.0);

/// A synthesized production-day arrival process: diurnal sinusoid plus
/// lazily-drawn multiplicative burst windows, sampled by thinning.
///
/// The instantaneous rate is
/// `base_rps × (1 + amp·sin(2π(t − phase)/period)) × m(t)` where `m(t)`
/// is `burst_scale` inside a burst window and `1` outside. Burst windows
/// recur every `120 s + Exp(480 s)` and last 30–90 s, drawn from a
/// dedicated RNG stream so the thinning draws stay aligned across any
/// pull chunking.
#[derive(Debug, Clone)]
pub struct SynthProcess {
    base_rps: f64,
    amp: f64,
    period_s: f64,
    phase_s: f64,
    burst_scale: f64,
    rng: SimRng,
    burst_rng: SimRng,
    /// Last drawn candidate instant (seconds); the stream cursor.
    cursor_s: f64,
    /// `true` when the candidate at `cursor_s` awaits its deferred
    /// accept/reject decision (it landed past the previous horizon).
    pending: bool,
    /// The most recently generated burst window `[start, end)`.
    burst: (f64, f64),
}

impl SynthProcess {
    /// Creates a synthesized process.
    ///
    /// `amp` is the diurnal amplitude in `[0, 1)`, `period_s`/`phase_s`
    /// shape the sinusoid (a production day uses `period_s = 86 400`),
    /// and `burst_scale ≥ 1` is the rate multiplier inside burst windows.
    ///
    /// # Panics
    ///
    /// Panics if `base_rps` is not strictly positive and finite, `amp` is
    /// outside `[0, 1)`, `period_s` is not strictly positive, `phase_s`
    /// is not finite, or `burst_scale < 1`.
    pub fn new(
        base_rps: f64,
        amp: f64,
        period_s: f64,
        phase_s: f64,
        burst_scale: f64,
        seed: u64,
    ) -> Self {
        assert!(base_rps.is_finite() && base_rps > 0.0, "base rate must be positive");
        assert!(amp.is_finite() && (0.0..1.0).contains(&amp), "amplitude must be in [0, 1)");
        assert!(period_s.is_finite() && period_s > 0.0, "period must be positive");
        assert!(phase_s.is_finite(), "phase must be finite");
        assert!(burst_scale.is_finite() && burst_scale >= 1.0, "burst scale must be >= 1");
        SynthProcess {
            base_rps,
            amp,
            period_s,
            phase_s,
            burst_scale,
            rng: component_rng(seed, "synth-arrivals"),
            burst_rng: component_rng(seed, "synth-bursts"),
            cursor_s: 0.0,
            pending: false,
            burst: (0.0, 0.0),
        }
    }

    /// The analytic peak rate the thinning sampler rejects against.
    fn peak(&self) -> f64 {
        self.base_rps * (1.0 + self.amp) * self.burst_scale
    }

    /// Advances the lazily-generated burst schedule so that the current
    /// window ends after `t`. Callers pass monotone `t`, so the number of
    /// burst-RNG draws depends only on how far time has advanced — never
    /// on pull chunking.
    fn advance_bursts(&mut self, t: f64) {
        while t >= self.burst.1 {
            let gap =
                BURST_GAP_MIN_S + sample_exponential(&mut self.burst_rng, 1.0 / BURST_GAP_MEAN_S);
            let len: f64 = self.burst_rng.gen_range(BURST_LEN_MIN_S..=BURST_LEN_MAX_S);
            let start = self.burst.1 + gap;
            self.burst = (start, start + len);
        }
    }

    /// The instantaneous rate at `t` seconds.
    fn rate_at(&mut self, t: f64) -> f64 {
        self.advance_bursts(t);
        let angle = std::f64::consts::TAU * (t - self.phase_s) / self.period_s;
        let diurnal = 1.0 + self.amp * angle.sin();
        let mult = if t >= self.burst.0 && t < self.burst.1 { self.burst_scale } else { 1.0 };
        self.base_rps * diurnal * mult
    }
}

impl ArrivalProcess for SynthProcess {
    fn refill(&mut self, horizon: SimTime, max: usize, out: &mut Vec<SimTime>) -> usize {
        let horizon_s = horizon.as_secs_f64();
        let peak = self.peak();
        let mut pushed = 0usize;
        while pushed < max {
            if !self.pending {
                self.cursor_s += sample_exponential(&mut self.rng, peak);
                self.pending = true;
            }
            if self.cursor_s >= horizon_s {
                break;
            }
            let t = self.cursor_s;
            self.pending = false;
            let rate = self.rate_at(t);
            let accept: f64 = self.rng.gen_range(0.0..1.0);
            if accept < rate / peak {
                out.push(SimTime::from_secs_f64(t));
                pushed += 1;
            }
        }
        pushed
    }

    fn mean_rate(&self) -> f64 {
        // The sinusoid averages out; bursts add their duty-cycle share.
        self.base_rps * (1.0 + BURST_DUTY * (self.burst_scale - 1.0))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn synth_is_deterministic_in_the_seed() {
        let a =
            SynthProcess::new(5.0, 0.4, 3600.0, 0.0, 4.0, 11).generate(SimTime::from_secs(1800));
        let b =
            SynthProcess::new(5.0, 0.4, 3600.0, 0.0, 4.0, 11).generate(SimTime::from_secs(1800));
        let c =
            SynthProcess::new(5.0, 0.4, 3600.0, 0.0, 4.0, 12).generate(SimTime::from_secs(1800));
        assert_eq!(a, b);
        assert_ne!(a, c, "different seeds must diverge");
        assert!(a.windows(2).all(|w| w[0] <= w[1]), "sorted ascending");
    }

    #[test]
    fn synth_tracks_its_mean_rate() {
        let mut p = SynthProcess::new(8.0, 0.3, 1200.0, 0.0, 3.0, 7);
        let want = p.mean_rate();
        let arrivals = p.generate(SimTime::from_secs(3600));
        let rate = arrivals.len() as f64 / 3600.0;
        assert!((rate - want).abs() / want < 0.15, "rate {rate}, want ≈ {want}");
    }

    #[test]
    fn synth_diurnal_modulates_the_rate() {
        // Full-amplitude sinusoid over one period: the busiest quarter
        // must clearly out-arrive the quietest quarter.
        let period = 2000.0;
        let mut p = SynthProcess::new(20.0, 0.9, period, 0.0, 1.0, 3);
        let arrivals = p.generate(SimTime::from_secs(2000));
        let quarter = |lo: f64, hi: f64| {
            arrivals
                .iter()
                .filter(|t| (t.as_secs_f64() % period) >= lo && (t.as_secs_f64() % period) < hi)
                .count()
        };
        let rising = quarter(0.0, 500.0);
        let falling = quarter(1000.0, 1500.0);
        assert!(
            rising as f64 > 2.0 * falling as f64,
            "peak quarter {rising} vs trough quarter {falling}"
        );
    }

    #[test]
    fn synth_bursts_raise_local_rates() {
        // With bursts enabled some window must exceed what the diurnal
        // envelope alone can produce.
        let mut p = SynthProcess::new(10.0, 0.2, 86_400.0, 0.0, 6.0, 5);
        let arrivals = p.generate(SimTime::from_secs(3600));
        let mut best = 0usize;
        for window_start in 0..3570 {
            let lo = SimTime::from_secs(window_start);
            let hi = SimTime::from_secs(window_start + 30);
            let count = arrivals.iter().filter(|&&t| t >= lo && t < hi).count();
            best = best.max(count);
        }
        // 30 s at the diurnal ceiling is 10 × 1.2 × 30 = 360 arrivals;
        // a 6× burst window has to beat that comfortably.
        assert!(best > 500, "densest 30 s window only held {best} arrivals");
    }

    #[test]
    fn synth_refill_is_chunk_invariant() {
        let end = SimTime::from_secs(2400);
        let one_shot = SynthProcess::new(6.0, 0.5, 1800.0, 300.0, 4.0, 23).generate(end);
        for window in [1usize, 9, 64] {
            let mut p = SynthProcess::new(6.0, 0.5, 1800.0, 300.0, 4.0, 23);
            let mut got = Vec::new();
            while p.refill(end, window, &mut got) == window {}
            assert_eq!(got, one_shot, "window {window}");
        }
    }

    #[test]
    #[should_panic(expected = "amplitude")]
    fn synth_rejects_out_of_range_amplitude() {
        SynthProcess::new(5.0, 1.5, 86_400.0, 0.0, 4.0, 1);
    }
}

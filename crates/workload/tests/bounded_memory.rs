//! Bounded-memory contract of the streaming trace readers, measured with
//! a counting global allocator: pulling a large on-disk trace through
//! `refill` in bounded chunks must hold live heap growth at O(window),
//! not O(rows). Materializing the same trace measurably does not.

use std::alloc::{GlobalAlloc, Layout, System};
use std::io::Write;
use std::path::PathBuf;
use std::sync::atomic::{AtomicI64, AtomicU64, Ordering};

use dilu_sim::SimTime;
use dilu_workload::{open_trace, TraceFormat};

struct MeteringAlloc;

/// Live heap bytes (allocated − freed) and the running peak, updated on
/// every allocator call. Relaxed is fine: the test is single-threaded.
static LIVE: AtomicI64 = AtomicI64::new(0);
static PEAK: AtomicU64 = AtomicU64::new(0);

fn note_alloc(bytes: usize) {
    let live = LIVE.fetch_add(bytes as i64, Ordering::Relaxed) + bytes as i64;
    PEAK.fetch_max(live.max(0) as u64, Ordering::Relaxed);
}

// SAFETY: delegates verbatim to `System`; bookkeeping is two relaxed
// atomic ops that never allocate.
unsafe impl GlobalAlloc for MeteringAlloc {
    unsafe fn alloc(&self, layout: Layout) -> *mut u8 {
        note_alloc(layout.size());
        unsafe { System.alloc(layout) }
    }

    unsafe fn dealloc(&self, ptr: *mut u8, layout: Layout) {
        LIVE.fetch_sub(layout.size() as i64, Ordering::Relaxed);
        unsafe { System.dealloc(ptr, layout) }
    }

    unsafe fn realloc(&self, ptr: *mut u8, layout: Layout, new_size: usize) -> *mut u8 {
        LIVE.fetch_sub(layout.size() as i64, Ordering::Relaxed);
        note_alloc(new_size);
        unsafe { System.realloc(ptr, layout, new_size) }
    }
}

#[global_allocator]
static METER: MeteringAlloc = MeteringAlloc;

/// Resets the peak tracker to the current live level and returns a probe
/// for the peak *growth* observed afterwards.
fn arm_peak_probe() -> impl Fn() -> u64 {
    let base = LIVE.load(Ordering::Relaxed).max(0) as u64;
    PEAK.store(base, Ordering::Relaxed);
    move || PEAK.load(Ordering::Relaxed).saturating_sub(base)
}

/// Writes an Alibaba-shaped trace with `rows` requests at 20 rps,
/// locally shuffled inside the reader's reorder window.
fn write_big_trace(rows: u64) -> PathBuf {
    let path = PathBuf::from(env!("CARGO_TARGET_TMPDIR")).join(format!("big-{rows}.csv"));
    let mut out = std::io::BufWriter::new(std::fs::File::create(&path).unwrap());
    writeln!(out, "time_s,function").unwrap();
    for i in 0..rows {
        // Swap each adjacent pair so the stream needs the reorder window
        // (stays far inside DEFAULT_REORDER_WINDOW).
        let j = if i % 2 == 0 { i + 1 } else { i - 1 };
        writeln!(out, "{:.3},fn-hot", j as f64 * 0.05).unwrap();
    }
    out.flush().unwrap();
    path
}

const ROWS: u64 = 200_000;

#[test]
fn chunked_refill_holds_live_heap_at_window_scale() {
    let path = write_big_trace(ROWS);
    let horizon = SimTime::from_secs(11_000);

    // Baseline: materialize the whole schedule. 200k instants are ≥1.6 MB
    // of `SimTime` alone, so the peak is necessarily O(rows).
    let mut materialize = open_trace(&path, TraceFormat::Alibaba, None).unwrap();
    let probe = arm_peak_probe();
    let all = materialize.generate(horizon);
    assert_eq!(all.len() as u64, ROWS);
    let materialized_peak = probe();
    drop(all);
    drop(materialize);
    assert!(
        materialized_peak >= ROWS * std::mem::size_of::<SimTime>() as u64,
        "materializing must cost O(rows) ({materialized_peak} bytes)"
    );

    // Streaming: the same trace pulled 256 instants at a time. Live heap
    // growth during the pull loop must stay at O(window + reorder window
    // + line buffer) — hundreds of kilobytes below the materialized peak.
    let mut streaming = open_trace(&path, TraceFormat::Alibaba, None).unwrap();
    let probe = arm_peak_probe();
    let mut chunk = Vec::new();
    let mut total: u64 = 0;
    let mut last = SimTime::ZERO;
    loop {
        chunk.clear();
        let got = streaming.refill(horizon, 256, &mut chunk);
        for &t in &chunk {
            assert!(t >= last, "stream must stay sorted across chunk boundaries");
            last = t;
        }
        total += chunk.len() as u64;
        if got < 256 {
            break;
        }
    }
    let streaming_peak = probe();
    assert_eq!(total, ROWS, "chunked pull must see every row exactly once");
    assert!(
        streaming_peak < 256 * 1024,
        "streaming peak grew to {streaming_peak} bytes — window-bounded pull is leaking \
         (materialized peak was {materialized_peak})"
    );
    assert!(
        streaming_peak * 4 < materialized_peak,
        "streaming ({streaming_peak} bytes) should be far below materializing \
         ({materialized_peak} bytes)"
    );
}

//! Per-node LRU model cache: weights fetched once stay resident.

/// A byte-budgeted LRU cache over opaque keys (model identifiers).
///
/// Backed by a small vector ordered least- to most-recently used — node
/// caches hold a handful of models, so linear scans beat pointer-chasing
/// and keep iteration order (and therefore eviction order) trivially
/// deterministic.
///
/// # Examples
///
/// ```
/// use dilu_net::ModelCache;
///
/// let mut cache = ModelCache::new(100);
/// cache.insert("a", 60);
/// cache.insert("b", 30);
/// assert!(cache.contains(&"a")); // touches "a": "b" is now the LRU
/// cache.insert("c", 40); // evicts "b" (30), then fits next to "a"
/// assert!(!cache.contains(&"b"));
/// assert!(cache.contains(&"a") && cache.contains(&"c"));
/// ```
#[derive(Debug, Clone)]
pub struct ModelCache<K> {
    capacity: u64,
    used: u64,
    /// `(key, bytes)`, least-recently-used first.
    entries: Vec<(K, u64)>,
}

impl<K: PartialEq> ModelCache<K> {
    /// Creates a cache holding up to `capacity` bytes. A zero capacity
    /// is a valid always-miss cache (caching disabled).
    pub fn new(capacity: u64) -> Self {
        ModelCache { capacity, used: 0, entries: Vec::new() }
    }

    /// `true` if `key` is resident; a hit marks it most recently used.
    pub fn contains(&mut self, key: &K) -> bool {
        if let Some(pos) = self.entries.iter().position(|(k, _)| k == key) {
            let entry = self.entries.remove(pos);
            self.entries.push(entry);
            true
        } else {
            false
        }
    }

    /// Inserts `key` at `bytes`, evicting least-recently-used entries
    /// until it fits. An item larger than the whole capacity is not
    /// cached at all (and evicts nothing). Re-inserting a resident key
    /// refreshes its recency (and size, if it changed).
    pub fn insert(&mut self, key: K, bytes: u64) {
        if let Some(pos) = self.entries.iter().position(|(k, _)| *k == key) {
            let (k, old) = self.entries.remove(pos);
            self.used -= old;
            // Fall through to re-insert with the new size and recency.
            let _ = k;
        }
        if bytes > self.capacity {
            return;
        }
        while self.used + bytes > self.capacity {
            let (_, evicted) = self.entries.remove(0);
            self.used -= evicted;
        }
        self.used += bytes;
        self.entries.push((key, bytes));
    }

    /// Bytes currently resident.
    pub fn used_bytes(&self) -> u64 {
        self.used
    }

    /// The byte budget.
    pub fn capacity_bytes(&self) -> u64 {
        self.capacity
    }

    /// Number of resident entries.
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    /// `true` when nothing is resident.
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn evicts_in_lru_order() {
        let mut cache = ModelCache::new(100);
        cache.insert("a", 40);
        cache.insert("b", 40);
        cache.insert("c", 40); // evicts "a" (oldest)
        assert!(!cache.contains(&"a"));
        assert!(cache.contains(&"b"));
        assert!(cache.contains(&"c"));
        assert_eq!(cache.used_bytes(), 80);
    }

    #[test]
    fn a_hit_refreshes_recency() {
        let mut cache = ModelCache::new(100);
        cache.insert("a", 40);
        cache.insert("b", 40);
        assert!(cache.contains(&"a")); // "b" becomes the LRU
        cache.insert("c", 40);
        assert!(!cache.contains(&"b"), "the untouched entry is evicted first");
        assert!(cache.contains(&"a"));
    }

    #[test]
    fn zero_capacity_never_caches() {
        let mut cache = ModelCache::new(0);
        cache.insert("a", 1);
        assert!(!cache.contains(&"a"));
        assert!(cache.is_empty());
        assert_eq!(cache.used_bytes(), 0);
    }

    #[test]
    fn oversized_items_are_not_cached_and_evict_nothing() {
        let mut cache = ModelCache::new(100);
        cache.insert("a", 60);
        cache.insert("huge", 101);
        assert!(!cache.contains(&"huge"));
        assert!(cache.contains(&"a"), "a rejected item must not evict residents");
    }

    #[test]
    fn exact_fit_works_and_evicts_all() {
        let mut cache = ModelCache::new(100);
        cache.insert("a", 30);
        cache.insert("b", 30);
        cache.insert("exact", 100); // needs the full budget
        assert_eq!(cache.len(), 1);
        assert!(cache.contains(&"exact"));
        assert_eq!(cache.used_bytes(), 100);
    }

    #[test]
    fn hit_after_evict_means_refetch() {
        // The cluster's contract: `contains` false ⇒ the caller fetches
        // and re-inserts. Model the round trip.
        let mut cache = ModelCache::new(50);
        cache.insert("a", 30);
        cache.insert("b", 30); // evicts "a"
        assert!(!cache.contains(&"a"), "evicted entries miss");
        cache.insert("a", 30); // the refetch re-caches it
        assert!(cache.contains(&"a"));
        assert!(!cache.contains(&"b"));
    }

    #[test]
    fn reinserting_a_resident_key_updates_size_without_double_counting() {
        let mut cache = ModelCache::new(100);
        cache.insert("a", 40);
        cache.insert("a", 60);
        assert_eq!(cache.used_bytes(), 60);
        assert_eq!(cache.len(), 1);
    }
}

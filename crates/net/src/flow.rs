//! The shared-bandwidth flow plane: max-min-fair rate allocation over a
//! two-level topology, integrated with a quantum-grid clock.
//!
//! Flow state (remaining bytes, rate, epoch timestamp) mutates **only at
//! membership changes** — a flow starting or finishing — never per tick.
//! Between changes a flow's progress is implied by `rate × elapsed`, so
//! the plane does the same exact integer arithmetic no matter how often
//! the driver polls it: dense-quantum (every quantum) and event-driven
//! (only at finish instants) evolve byte-identically.

use std::collections::{BTreeMap, BTreeSet};

use dilu_sim::{SimDuration, SimTime};

use crate::{gbps_to_bytes, NetworkConfig};

/// Identifier of an active flow, unique over a [`NetPlane`]'s lifetime
/// and allocated in start order.
pub type FlowId = u64;

/// One active transfer: a byte count crossing a path of links.
#[derive(Debug)]
struct Flow<T> {
    /// Link indices this flow crosses (1 or 2 of them).
    links: Vec<usize>,
    /// Bytes still to deliver as of `t0`.
    remaining: u64,
    /// Epoch of the current rate: the last membership-change instant.
    t0: SimTime,
    /// Allocated rate in bytes/second (≥ 1), valid since `t0`.
    rate: u64,
    payload: T,
}

/// The deterministic shared-bandwidth network plane.
///
/// Topology: one shared core/registry link, one ToR uplink per node, one
/// intra-node (NVLink-class) link per node. A weight fetch crosses
/// `{registry, tor[dst]}`; a cross-node transfer `{tor[src], tor[dst]}`;
/// a same-node transfer `{nv[node]}`. Rates are max-min fair: capacity
/// is water-filled link by link, freezing the most-contended link's
/// flows at its equal share first (pure integer arithmetic, ties broken
/// by lowest link index, flows completed in id order — deterministic by
/// construction).
///
/// The payload type `T` is the caller's bookkeeping (which instance or
/// batch the bytes belong to); it is handed back by [`take_due`] when
/// the flow finishes.
///
/// [`take_due`]: NetPlane::take_due
#[derive(Debug)]
pub struct NetPlane<T> {
    /// Per-link capacity in bytes/second: `[registry, tor…, nv…]`.
    caps: Vec<u64>,
    nodes: usize,
    quantum_us: u64,
    flows: BTreeMap<FlowId, Flow<T>>,
    next_id: FlowId,
    requested: u64,
    delivered: u64,
}

impl<T> NetPlane<T> {
    /// Builds the plane for `nodes` nodes with the given link tiers and
    /// the driver's scheduling quantum (finish instants align to its
    /// grid, where the cluster processes completions).
    pub fn new(nodes: usize, cfg: &NetworkConfig, quantum: SimDuration) -> Self {
        let mut caps = Vec::with_capacity(1 + 2 * nodes);
        caps.push(gbps_to_bytes(cfg.registry_gbps));
        caps.extend(std::iter::repeat_n(gbps_to_bytes(cfg.tor_gbps), nodes));
        caps.extend(std::iter::repeat_n(gbps_to_bytes(cfg.nvlink_gbps), nodes));
        NetPlane {
            caps,
            nodes,
            quantum_us: quantum.as_micros().max(1),
            flows: BTreeMap::new(),
            next_id: 1,
            requested: 0,
            delivered: 0,
        }
    }

    fn tor(&self, node: usize) -> usize {
        debug_assert!(node < self.nodes, "node {node} out of range");
        1 + node
    }

    fn nv(&self, node: usize) -> usize {
        debug_assert!(node < self.nodes, "node {node} out of range");
        1 + self.nodes + node
    }

    /// Starts a weight fetch from the registry to `dst_node`, contending
    /// on the shared registry link and the node's ToR uplink.
    pub fn start_fetch(&mut self, now: SimTime, dst_node: usize, bytes: u64, payload: T) -> FlowId {
        let links = vec![0, self.tor(dst_node)];
        self.start(now, links, bytes, payload)
    }

    /// Starts a transfer between two GPUs' nodes: over the intra-node
    /// link when they share a node, else over both ToR uplinks.
    pub fn start_transfer(
        &mut self,
        now: SimTime,
        src_node: usize,
        dst_node: usize,
        bytes: u64,
        payload: T,
    ) -> FlowId {
        let links = if src_node == dst_node {
            vec![self.nv(src_node)]
        } else {
            vec![self.tor(src_node), self.tor(dst_node)]
        };
        self.start(now, links, bytes, payload)
    }

    fn start(&mut self, now: SimTime, links: Vec<usize>, bytes: u64, payload: T) -> FlowId {
        // A zero-byte flow would finish at its own start; floor at one
        // byte so every flow crosses the wire (and the conservation
        // accounting) visibly.
        let bytes = bytes.max(1);
        self.advance_to(now);
        self.requested += bytes;
        let id = self.next_id;
        self.next_id += 1;
        self.flows.insert(id, Flow { links, remaining: bytes, t0: now, rate: 1, payload });
        self.reshare();
        id
    }

    /// Completes every flow whose finish instant has passed, in flow-id
    /// order, returning their payloads; survivors are advanced and
    /// re-shared. Polling with nothing due is a strict no-op, which is
    /// what keeps dense-quantum (polling every quantum) and event-driven
    /// (polling at finish instants) byte-identical.
    pub fn take_due(&mut self, now: SimTime) -> Vec<(FlowId, T)> {
        let due: Vec<FlowId> = self
            .flows
            .iter()
            .filter(|(_, f)| self.finish_of(f) <= now)
            .map(|(&id, _)| id)
            .collect();
        if due.is_empty() {
            return Vec::new();
        }
        self.advance_to(now);
        let mut out = Vec::with_capacity(due.len());
        for id in due {
            let flow = self.flows.remove(&id).expect("due flow exists");
            // The analytic finish rounds up to the grid, so a residue of
            // `remaining` bytes (< one quantum's worth) is credited here.
            self.delivered += flow.remaining;
            out.push((id, flow.payload));
        }
        self.reshare();
        out
    }

    /// Credits every flow's progress since its epoch and moves the epoch
    /// to `now`. Called only at membership changes, so the conservation
    /// ledger (`requested == delivered + inflight`) holds exactly at
    /// every instant in between.
    fn advance_to(&mut self, now: SimTime) {
        for flow in self.flows.values_mut() {
            let elapsed = now.saturating_since(flow.t0).as_micros();
            if elapsed == 0 {
                continue;
            }
            let sent = ((flow.rate as u128 * elapsed as u128) / 1_000_000) as u64;
            let sent = sent.min(flow.remaining);
            flow.remaining -= sent;
            self.delivered += sent;
            flow.t0 = now;
        }
    }

    /// Max-min-fair water filling: repeatedly find the link whose equal
    /// share among its not-yet-frozen flows is smallest (ties to the
    /// lowest link index), freeze those flows at that share, subtract
    /// their rates everywhere they pass, repeat. Pure integer division,
    /// rates floored at 1 B/s so every flow always finishes.
    fn reshare(&mut self) {
        if self.flows.is_empty() {
            return;
        }
        let mut cap = self.caps.clone();
        let mut count = vec![0u64; self.caps.len()];
        for flow in self.flows.values() {
            for &l in &flow.links {
                count[l] += 1;
            }
        }
        let mut unfrozen: BTreeSet<FlowId> = self.flows.keys().copied().collect();
        while !unfrozen.is_empty() {
            let mut bottleneck: Option<(u64, usize)> = None;
            for (l, (&c, &n)) in cap.iter().zip(count.iter()).enumerate() {
                if n == 0 {
                    continue;
                }
                let share = c / n;
                if bottleneck.is_none_or(|(s, _)| share < s) {
                    bottleneck = Some((share, l));
                }
            }
            let (share, link) = bottleneck.expect("unfrozen flows cross some link");
            let rate = share.max(1);
            let to_freeze: Vec<FlowId> = unfrozen
                .iter()
                .copied()
                .filter(|id| self.flows[id].links.contains(&link))
                .collect();
            debug_assert!(!to_freeze.is_empty(), "the bottleneck link has flows");
            for id in to_freeze {
                unfrozen.remove(&id);
                let flow = self.flows.get_mut(&id).expect("unfrozen flow exists");
                flow.rate = rate;
                for &l in &flow.links {
                    count[l] -= 1;
                    cap[l] = cap[l].saturating_sub(rate);
                }
            }
        }
    }

    /// The grid-aligned instant this flow (at its current rate) delivers
    /// its last byte.
    fn finish_of(&self, flow: &Flow<T>) -> SimTime {
        let dur_us = (flow.remaining as u128 * 1_000_000)
            .div_ceil(flow.rate as u128)
            .min(u64::MAX as u128) as u64;
        let raw = flow.t0.saturating_add(SimDuration::from_micros(dur_us));
        let q = self.quantum_us;
        SimTime::from_micros(raw.as_micros().div_ceil(q).saturating_mul(q))
    }

    /// Grid-aligned finish instants of all active flows — what the
    /// event-driven driver turns into wake events after every reshare.
    pub fn finish_instants(&self) -> impl Iterator<Item = SimTime> + '_ {
        self.flows.values().map(|f| self.finish_of(f))
    }

    /// Active flows as `(id, payload, remaining bytes as of the last
    /// membership change)` in id order.
    pub fn pending(&self) -> impl Iterator<Item = (FlowId, &T, u64)> + '_ {
        self.flows.iter().map(|(&id, f)| (id, &f.payload, f.remaining))
    }

    /// Number of active flows.
    pub fn active_flows(&self) -> usize {
        self.flows.len()
    }

    /// Total bytes ever requested (every `start_*` adds its size here).
    pub fn requested_bytes(&self) -> u64 {
        self.requested
    }

    /// Total bytes delivered (credited at membership changes; the ledger
    /// `requested == delivered + inflight` holds at every instant).
    pub fn delivered_bytes(&self) -> u64 {
        self.delivered
    }

    /// Bytes still in flight: Σ remaining over active flows.
    pub fn inflight_bytes(&self) -> u64 {
        self.flows.values().map(|f| f.remaining).sum()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    const Q: SimDuration = SimDuration::from_millis(5);

    fn plane(nodes: usize, registry_gbps: f64, tor_gbps: f64) -> NetPlane<u32> {
        let cfg = NetworkConfig {
            registry_gbps,
            tor_gbps,
            nvlink_gbps: 200.0,
            ..NetworkConfig::default()
        };
        NetPlane::new(nodes, &cfg, Q)
    }

    #[test]
    fn solo_fetch_runs_at_registry_line_rate() {
        // 10 Gbps registry, 25 Gbps ToR: the registry bottlenecks a solo
        // fetch at 1.25 GB/s, so 2.5 GB takes exactly 2 s.
        let mut net = plane(4, 10.0, 25.0);
        net.start_fetch(SimTime::ZERO, 2, 2_500_000_000, 7);
        assert!(net.take_due(SimTime::from_millis(1_995)).is_empty());
        let done = net.take_due(SimTime::from_secs(2));
        assert_eq!(done, vec![(1, 7)]);
        assert_eq!(net.requested_bytes(), net.delivered_bytes());
        assert_eq!(net.inflight_bytes(), 0);
    }

    #[test]
    fn concurrent_fetches_share_the_registry_fairly() {
        // Four simultaneous fetches to four different nodes: each ToR
        // has capacity to spare, the registry splits 4 ways, so each
        // fetch takes 4× the solo time.
        let mut net = plane(4, 10.0, 25.0);
        for node in 0..4 {
            net.start_fetch(SimTime::ZERO, node, 1_250_000_000, node as u32);
        }
        assert!(net.take_due(SimTime::from_millis(3_995)).is_empty(), "4× slowdown");
        let done = net.take_due(SimTime::from_secs(4));
        assert_eq!(done.len(), 4, "equal flows finish together, in id order");
        assert_eq!(done.iter().map(|&(id, _)| id).collect::<Vec<_>>(), vec![1, 2, 3, 4]);
        assert_eq!(net.delivered_bytes(), 5_000_000_000);
    }

    #[test]
    fn tor_bottleneck_caps_a_node_while_others_run_free() {
        // Two fetches to node 0 (ToR 5 Gbps < registry 20 Gbps / 3 flows
        // after max-min) and one to node 1: node 0's pair is capped at
        // 2.5 Gbps each by its ToR; node 1's flow takes the registry
        // remainder (15 Gbps) but is capped by its own 5 Gbps ToR.
        let mut net = plane(2, 20.0, 5.0);
        net.start_fetch(SimTime::ZERO, 0, 625_000_000, 0); // 2.5 Gbps -> 2 s
        net.start_fetch(SimTime::ZERO, 0, 625_000_000, 1); // 2.5 Gbps -> 2 s
        net.start_fetch(SimTime::ZERO, 1, 625_000_000, 2); // 5 Gbps -> 1 s
        let done = net.take_due(SimTime::from_secs(1));
        assert_eq!(done, vec![(3, 2)], "node 1 finishes at its ToR line rate");
        let done = net.take_due(SimTime::from_secs(2));
        assert_eq!(done.iter().map(|&(id, _)| id).collect::<Vec<_>>(), vec![1, 2]);
    }

    #[test]
    fn completion_releases_bandwidth_to_survivors() {
        // Two equal fetches split the 10 Gbps registry; when the short
        // one finishes, the long one doubles its rate from that instant.
        let mut net = plane(2, 10.0, 25.0);
        net.start_fetch(SimTime::ZERO, 0, 625_000_000, 0); // 1 s at half rate
        net.start_fetch(SimTime::ZERO, 1, 1_250_000_000, 1);
        let done = net.take_due(SimTime::from_secs(1));
        assert_eq!(done, vec![(1, 0)]);
        // Flow 2 delivered 625 MB in the shared second; the remaining
        // 625 MB at full 1.25 GB/s takes 0.5 s more.
        assert_eq!(net.inflight_bytes(), 625_000_000);
        assert!(net.take_due(SimTime::from_micros(1_495_000)).is_empty());
        let done = net.take_due(SimTime::from_micros(1_500_000));
        assert_eq!(done, vec![(2, 1)]);
    }

    #[test]
    fn same_node_transfers_ride_the_nvlink() {
        // 200 Gbps NVLink = 25 GB/s: 2.5 GB in 100 ms, untouched by a
        // saturated registry.
        let mut net = plane(2, 10.0, 25.0);
        net.start_fetch(SimTime::ZERO, 0, 12_500_000_000, 9); // hog the registry
        net.start_transfer(SimTime::ZERO, 1, 1, 2_500_000_000, 1);
        let done = net.take_due(SimTime::from_millis(100));
        assert_eq!(done, vec![(2, 1)]);
    }

    #[test]
    fn cross_node_transfers_contend_on_both_tors() {
        // A fetch into node 1 and a node 0 → node 1 transfer share node
        // 1's 10 Gbps ToR (registry is fat): each gets 5 Gbps.
        let mut net = plane(2, 100.0, 10.0);
        net.start_fetch(SimTime::ZERO, 1, 625_000_000, 0);
        net.start_transfer(SimTime::ZERO, 0, 1, 625_000_000, 1);
        assert!(net.take_due(SimTime::from_millis(995)).is_empty());
        let done = net.take_due(SimTime::from_secs(1));
        assert_eq!(done.len(), 2, "equal split of the shared ToR");
    }

    #[test]
    fn conservation_ledger_holds_at_every_grid_instant() {
        let mut net = plane(3, 7.5, 12.5);
        let mut t = SimTime::ZERO;
        net.start_fetch(t, 0, 3_000_000_000, 0);
        net.start_fetch(t, 1, 1_000_000_000, 1);
        let mut completed = 0;
        while net.active_flows() > 0 {
            t += SimDuration::from_millis(5);
            completed += net.take_due(t).len();
            assert_eq!(
                net.requested_bytes(),
                net.delivered_bytes() + net.inflight_bytes(),
                "ledger must balance at {t}"
            );
            if t == SimTime::from_millis(500) {
                net.start_transfer(t, 0, 2, 500_000_000, 2);
            }
        }
        assert_eq!(completed, 3);
        assert_eq!(net.requested_bytes(), net.delivered_bytes());
    }

    #[test]
    fn finish_instants_are_grid_aligned() {
        let mut net = plane(1, 10.0, 25.0);
        net.start_fetch(SimTime::ZERO, 0, 1_234_567, 0);
        for at in net.finish_instants() {
            assert_eq!(at.as_micros() % 5_000, 0, "finish {at} must sit on the grid");
        }
    }

    #[test]
    fn zero_byte_flows_are_floored_to_one_byte() {
        let mut net = plane(1, 10.0, 25.0);
        net.start_fetch(SimTime::ZERO, 0, 0, 0);
        assert_eq!(net.requested_bytes(), 1);
        assert_eq!(net.inflight_bytes(), 1);
        let done = net.take_due(SimTime::from_millis(5));
        assert_eq!(done.len(), 1, "a floored flow still takes one grid step");
    }

    #[test]
    fn polling_with_nothing_due_is_a_no_op() {
        let mut net = plane(1, 10.0, 25.0);
        net.start_fetch(SimTime::ZERO, 0, 1_250_000_000, 0);
        let before_inflight = net.inflight_bytes();
        let before_delivered = net.delivered_bytes();
        for ms in (5..1000).step_by(5) {
            assert!(net.take_due(SimTime::from_millis(ms)).is_empty());
        }
        assert_eq!(net.inflight_bytes(), before_inflight, "no membership change, no mutation");
        assert_eq!(net.delivered_bytes(), before_delivered);
    }
}

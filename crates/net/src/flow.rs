//! The shared-bandwidth flow plane: max-min-fair rate allocation over a
//! two-level topology, integrated with a quantum-grid clock.
//!
//! Flow state (remaining bytes, rate, epoch timestamp) mutates **only at
//! membership changes** — a flow starting or finishing — never per tick.
//! Between changes a flow's progress is implied by `rate × elapsed`, so
//! the plane does the same exact integer arithmetic no matter how often
//! the driver polls it: dense-quantum (every quantum) and event-driven
//! (only at finish instants) evolve byte-identically.
//!
//! # Incremental re-share
//!
//! Max-min water-filling decomposes over the connected components of the
//! "flows sharing a link" graph: freezing a bottleneck link only touches
//! the capacities and counts of its own component, so components fill
//! independently and a membership change can only move rates inside the
//! changed flow's component. [`NetPlane`] exploits that: each membership
//! change re-water-fills just the component reachable from the
//! joining/leaving flow's links (O(component) — a k-flow cold-start storm
//! costs O(k·degree) per change instead of O(topology) with the previous
//! full re-share). The full re-share survives as
//! [`full_water_fill_rates`](NetPlane::full_water_fill_rates), the debug
//! oracle: every incremental result is checked against it under
//! `debug_assertions` (so every debug test run, including the harness
//! conservation-oracle fuzz, differences the two), and the property tests
//! below drive random arrival/departure sequences through both.

use std::collections::{BTreeMap, BTreeSet};

use dilu_sim::{SimDuration, SimTime};

use crate::{gbps_to_bytes, NetworkConfig};

/// Identifier of an active flow, unique over a [`NetPlane`]'s lifetime
/// and allocated in start order.
pub type FlowId = u64;

/// One active transfer: a byte count crossing a path of links.
#[derive(Debug)]
struct Flow<T> {
    /// Link indices this flow crosses — at most two on this topology, so
    /// a fixed pair avoids a heap allocation per flow.
    links: [usize; 2],
    nlinks: u8,
    /// Bytes still to deliver as of `t0`.
    remaining: u64,
    /// Epoch of the current rate: the last membership-change instant.
    t0: SimTime,
    /// Allocated rate in bytes/second (≥ 1), valid since `t0`.
    rate: u64,
    payload: T,
}

impl<T> Flow<T> {
    fn links(&self) -> &[usize] {
        &self.links[..self.nlinks as usize]
    }
}

/// The deterministic shared-bandwidth network plane.
///
/// Topology: one shared core/registry link, one ToR uplink per node, one
/// intra-node (NVLink-class) link per node. A weight fetch crosses
/// `{registry, tor[dst]}`; a cross-node transfer `{tor[src], tor[dst]}`;
/// a same-node transfer `{nv[node]}`. Rates are max-min fair: capacity
/// is water-filled link by link, freezing the most-contended link's
/// flows at its equal share first (pure integer arithmetic, ties broken
/// by lowest link index, flows completed in id order — deterministic by
/// construction). Re-shares are incremental per connected component (see
/// the module docs); results are bit-identical to the full re-share.
///
/// The payload type `T` is the caller's bookkeeping (which instance or
/// batch the bytes belong to); it is handed back by [`take_due`] when
/// the flow finishes.
///
/// [`take_due`]: NetPlane::take_due
#[derive(Debug)]
pub struct NetPlane<T> {
    /// Per-link capacity in bytes/second: `[registry, tor…, nv…]`.
    caps: Vec<u64>,
    nodes: usize,
    quantum_us: u64,
    flows: BTreeMap<FlowId, Flow<T>>,
    /// Per-link ids of the flows crossing it, ascending (ids are
    /// allocated in start order, so joins push to the back in O(1)).
    link_flows: Vec<Vec<FlowId>>,
    next_id: FlowId,
    requested: u64,
    delivered: u64,
    // --- re-share scratch, reused across membership changes ---
    /// Residual capacity per touched link during a water-fill.
    cap_scratch: Vec<u64>,
    /// Unfrozen-flow count per touched link during a water-fill.
    count_scratch: Vec<u64>,
    /// Links already visited by the current component walk.
    link_seen: Vec<bool>,
    /// DFS stack / touched-link list for the current component walk.
    link_stack: Vec<usize>,
    touched_links: Vec<usize>,
    /// Seed links of a batch departure, deduplicated.
    seed_scratch: Vec<usize>,
    /// Flows of the walked component, sorted ascending, plus a parallel
    /// frozen mask for the water-fill (flat scratch — re-shares allocate
    /// nothing once these are warm).
    affected_scratch: Vec<FlowId>,
    frozen_scratch: Vec<bool>,
}

impl<T> NetPlane<T> {
    /// Builds the plane for `nodes` nodes with the given link tiers and
    /// the driver's scheduling quantum (finish instants align to its
    /// grid, where the cluster processes completions).
    pub fn new(nodes: usize, cfg: &NetworkConfig, quantum: SimDuration) -> Self {
        let mut caps = Vec::with_capacity(1 + 2 * nodes);
        caps.push(gbps_to_bytes(cfg.registry_gbps));
        caps.extend(std::iter::repeat_n(gbps_to_bytes(cfg.tor_gbps), nodes));
        caps.extend(std::iter::repeat_n(gbps_to_bytes(cfg.nvlink_gbps), nodes));
        let links = caps.len();
        NetPlane {
            caps,
            nodes,
            quantum_us: quantum.as_micros().max(1),
            flows: BTreeMap::new(),
            link_flows: vec![Vec::new(); links],
            next_id: 1,
            requested: 0,
            delivered: 0,
            cap_scratch: vec![0; links],
            count_scratch: vec![0; links],
            link_seen: vec![false; links],
            link_stack: Vec::new(),
            touched_links: Vec::new(),
            seed_scratch: Vec::new(),
            affected_scratch: Vec::new(),
            frozen_scratch: Vec::new(),
        }
    }

    fn tor(&self, node: usize) -> usize {
        debug_assert!(node < self.nodes, "node {node} out of range");
        1 + node
    }

    fn nv(&self, node: usize) -> usize {
        debug_assert!(node < self.nodes, "node {node} out of range");
        1 + self.nodes + node
    }

    /// Starts a weight fetch from the registry to `dst_node`, contending
    /// on the shared registry link and the node's ToR uplink.
    pub fn start_fetch(&mut self, now: SimTime, dst_node: usize, bytes: u64, payload: T) -> FlowId {
        let links = [0, self.tor(dst_node)];
        self.start(now, links, 2, bytes, payload)
    }

    /// Starts a transfer between two GPUs' nodes: over the intra-node
    /// link when they share a node, else over both ToR uplinks.
    pub fn start_transfer(
        &mut self,
        now: SimTime,
        src_node: usize,
        dst_node: usize,
        bytes: u64,
        payload: T,
    ) -> FlowId {
        let (links, nlinks) = if src_node == dst_node {
            ([self.nv(src_node), 0], 1)
        } else {
            ([self.tor(src_node), self.tor(dst_node)], 2)
        };
        self.start(now, links, nlinks, bytes, payload)
    }

    fn start(
        &mut self,
        now: SimTime,
        links: [usize; 2],
        nlinks: u8,
        bytes: u64,
        payload: T,
    ) -> FlowId {
        // A zero-byte flow would finish at its own start; floor at one
        // byte so every flow crosses the wire (and the conservation
        // accounting) visibly.
        let bytes = bytes.max(1);
        self.advance_to(now);
        self.requested += bytes;
        let id = self.next_id;
        self.next_id += 1;
        for &l in &links[..nlinks as usize] {
            // Ids are allocated ascending, so this keeps the list sorted.
            self.link_flows[l].push(id);
        }
        self.flows.insert(id, Flow { links, nlinks, remaining: bytes, t0: now, rate: 1, payload });
        self.reshare_from_many(&links[..nlinks as usize]);
        id
    }

    /// Completes every flow whose finish instant has passed, in flow-id
    /// order, returning their payloads; survivors are advanced and
    /// re-shared. Polling with nothing due is a strict no-op, which is
    /// what keeps dense-quantum (polling every quantum) and event-driven
    /// (polling at finish instants) byte-identical.
    pub fn take_due(&mut self, now: SimTime) -> Vec<(FlowId, T)> {
        let due: Vec<FlowId> = self
            .flows
            .iter()
            .filter(|(_, f)| self.finish_of(f) <= now)
            .map(|(&id, _)| id)
            .collect();
        if due.is_empty() {
            return Vec::new();
        }
        self.advance_to(now);
        // Collect the departing flows' links as re-share seeds, then drop
        // the departures from the per-link lists in one pass per link.
        let mut seeds = std::mem::take(&mut self.seed_scratch);
        debug_assert!(seeds.is_empty());
        let mut out = Vec::with_capacity(due.len());
        for &id in &due {
            let flow = self.flows.remove(&id).expect("due flow exists");
            // The analytic finish rounds up to the grid, so a residue of
            // `remaining` bytes (< one quantum's worth) is credited here.
            self.delivered += flow.remaining;
            for &l in flow.links() {
                if !self.link_seen[l] {
                    self.link_seen[l] = true;
                    seeds.push(l);
                }
            }
            out.push((id, flow.payload));
        }
        // `due` is ascending (BTreeMap iteration order), so each per-link
        // list is pruned with one binary-searched retain pass.
        for &l in &seeds {
            self.link_seen[l] = false;
            self.link_flows[l].retain(|id| due.binary_search(id).is_err());
        }
        // Re-fill every component the departures touched. Components are
        // disjoint, but a single walk from all seeds handles any overlap.
        self.reshare_from_many(&seeds);
        seeds.clear();
        self.seed_scratch = seeds;
        out
    }

    /// Credits every flow's progress since its epoch and moves the epoch
    /// to `now`. Called only at membership changes, so the conservation
    /// ledger (`requested == delivered + inflight`) holds exactly at
    /// every instant in between.
    fn advance_to(&mut self, now: SimTime) {
        for flow in self.flows.values_mut() {
            let elapsed = now.saturating_since(flow.t0).as_micros();
            if elapsed == 0 {
                continue;
            }
            let sent = ((flow.rate as u128 * elapsed as u128) / 1_000_000) as u64;
            let sent = sent.min(flow.remaining);
            flow.remaining -= sent;
            self.delivered += sent;
            flow.t0 = now;
        }
    }

    /// Re-water-fills the connected component(s) reachable from `seeds`:
    /// walk the "flows sharing a link" graph, then run the same
    /// freeze-the-bottleneck loop as the full re-share restricted to the
    /// collected flows. Flows outside the walk share no link (directly or
    /// transitively) with the seeds, so the full algorithm could never
    /// have moved their rates — which is exactly what the debug oracle
    /// re-proves after every change.
    fn reshare_from_many(&mut self, seeds: &[usize]) {
        if self.flows.is_empty() {
            return;
        }
        // --- component walk ---
        let mut stack = std::mem::take(&mut self.link_stack);
        let mut touched = std::mem::take(&mut self.touched_links);
        let mut affected = std::mem::take(&mut self.affected_scratch);
        debug_assert!(stack.is_empty() && touched.is_empty() && affected.is_empty());
        for &l in seeds {
            if !self.link_seen[l] {
                self.link_seen[l] = true;
                stack.push(l);
                touched.push(l);
            }
        }
        while let Some(l) = stack.pop() {
            for &id in &self.link_flows[l] {
                // A two-link flow lands here once per link; dedup below.
                affected.push(id);
                for &l2 in self.flows[&id].links() {
                    if !self.link_seen[l2] {
                        self.link_seen[l2] = true;
                        stack.push(l2);
                        touched.push(l2);
                    }
                }
            }
        }
        affected.sort_unstable();
        affected.dedup();
        // --- water-fill the affected component(s) ---
        // Touched links are scanned ascending so the bottleneck tie-break
        // (lowest link index) matches the full re-share exactly.
        touched.sort_unstable();
        for &l in &touched {
            self.cap_scratch[l] = self.caps[l];
            self.count_scratch[l] = 0;
        }
        for &id in &affected {
            for &l in self.flows[&id].links() {
                self.count_scratch[l] += 1;
            }
        }
        let mut frozen = std::mem::take(&mut self.frozen_scratch);
        frozen.resize(affected.len(), false);
        let mut unfrozen = affected.len();
        while unfrozen > 0 {
            let mut bottleneck: Option<(u64, usize)> = None;
            for &l in &touched {
                let n = self.count_scratch[l];
                if n == 0 {
                    continue;
                }
                let share = self.cap_scratch[l] / n;
                if bottleneck.is_none_or(|(s, _)| share < s) {
                    bottleneck = Some((share, l));
                }
            }
            let (share, link) = bottleneck.expect("unfrozen flows cross some touched link");
            let rate = share.max(1);
            // The per-link list is ascending, so the freeze order (and
            // with it the cap subtraction sequence) is deterministic.
            let link_list = std::mem::take(&mut self.link_flows[link]);
            for &id in &link_list {
                let pos = affected.binary_search(&id).expect("flow on touched link is affected");
                if frozen[pos] {
                    continue;
                }
                frozen[pos] = true;
                unfrozen -= 1;
                let flow = self.flows.get_mut(&id).expect("affected flow exists");
                flow.rate = rate;
                for &l in flow.links() {
                    self.count_scratch[l] -= 1;
                    self.cap_scratch[l] = self.cap_scratch[l].saturating_sub(rate);
                }
            }
            self.link_flows[link] = link_list;
        }
        for &l in &touched {
            self.link_seen[l] = false;
        }
        touched.clear();
        affected.clear();
        frozen.clear();
        self.touched_links = touched;
        self.link_stack = stack;
        self.affected_scratch = affected;
        self.frozen_scratch = frozen;
        #[cfg(debug_assertions)]
        self.assert_matches_full_reshare();
    }

    /// The retained full re-share, as a non-mutating oracle: water-fills
    /// every link and every flow from scratch, exactly as the plane did
    /// before re-shares became incremental.
    #[cfg_attr(not(any(test, debug_assertions)), allow(dead_code))]
    fn full_water_fill_rates(&self) -> BTreeMap<FlowId, u64> {
        let mut rates = BTreeMap::new();
        if self.flows.is_empty() {
            return rates;
        }
        let mut cap = self.caps.clone();
        let mut count = vec![0u64; self.caps.len()];
        for flow in self.flows.values() {
            for &l in flow.links() {
                count[l] += 1;
            }
        }
        let mut unfrozen: BTreeSet<FlowId> = self.flows.keys().copied().collect();
        while !unfrozen.is_empty() {
            let mut bottleneck: Option<(u64, usize)> = None;
            for (l, (&c, &n)) in cap.iter().zip(count.iter()).enumerate() {
                if n == 0 {
                    continue;
                }
                let share = c / n;
                if bottleneck.is_none_or(|(s, _)| share < s) {
                    bottleneck = Some((share, l));
                }
            }
            let (share, link) = bottleneck.expect("unfrozen flows cross some link");
            let rate = share.max(1);
            let to_freeze: Vec<FlowId> = unfrozen
                .iter()
                .copied()
                .filter(|id| self.flows[id].links().contains(&link))
                .collect();
            debug_assert!(!to_freeze.is_empty(), "the bottleneck link has flows");
            for id in to_freeze {
                unfrozen.remove(&id);
                rates.insert(id, rate);
                for &l in self.flows[&id].links() {
                    count[l] -= 1;
                    cap[l] = cap[l].saturating_sub(rate);
                }
            }
        }
        rates
    }

    /// Debug oracle: the incremental rates must be bit-identical to a
    /// from-scratch full water-fill.
    #[cfg(debug_assertions)]
    fn assert_matches_full_reshare(&self) {
        let full = self.full_water_fill_rates();
        for (&id, flow) in &self.flows {
            debug_assert_eq!(
                flow.rate, full[&id],
                "incremental re-share diverged from the full oracle on flow {id}"
            );
        }
    }

    /// The grid-aligned instant this flow (at its current rate) delivers
    /// its last byte.
    fn finish_of(&self, flow: &Flow<T>) -> SimTime {
        let dur_us = (flow.remaining as u128 * 1_000_000)
            .div_ceil(flow.rate as u128)
            .min(u64::MAX as u128) as u64;
        let raw = flow.t0.saturating_add(SimDuration::from_micros(dur_us));
        let q = self.quantum_us;
        SimTime::from_micros(raw.as_micros().div_ceil(q).saturating_mul(q))
    }

    /// Grid-aligned finish instants of all active flows — what the
    /// event-driven driver turns into wake events after every reshare.
    pub fn finish_instants(&self) -> impl Iterator<Item = SimTime> + '_ {
        self.flows.values().map(|f| self.finish_of(f))
    }

    /// Active flows as `(id, payload, remaining bytes as of the last
    /// membership change)` in id order.
    pub fn pending(&self) -> impl Iterator<Item = (FlowId, &T, u64)> + '_ {
        self.flows.iter().map(|(&id, f)| (id, &f.payload, f.remaining))
    }

    /// Number of active flows.
    pub fn active_flows(&self) -> usize {
        self.flows.len()
    }

    /// Total bytes ever requested (every `start_*` adds its size here).
    pub fn requested_bytes(&self) -> u64 {
        self.requested
    }

    /// Total bytes delivered (credited at membership changes; the ledger
    /// `requested == delivered + inflight` holds at every instant).
    pub fn delivered_bytes(&self) -> u64 {
        self.delivered
    }

    /// Bytes still in flight: Σ remaining over active flows.
    pub fn inflight_bytes(&self) -> u64 {
        self.flows.values().map(|f| f.remaining).sum()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    const Q: SimDuration = SimDuration::from_millis(5);

    fn plane(nodes: usize, registry_gbps: f64, tor_gbps: f64) -> NetPlane<u32> {
        let cfg = NetworkConfig {
            registry_gbps,
            tor_gbps,
            nvlink_gbps: 200.0,
            ..NetworkConfig::default()
        };
        NetPlane::new(nodes, &cfg, Q)
    }

    #[test]
    fn solo_fetch_runs_at_registry_line_rate() {
        // 10 Gbps registry, 25 Gbps ToR: the registry bottlenecks a solo
        // fetch at 1.25 GB/s, so 2.5 GB takes exactly 2 s.
        let mut net = plane(4, 10.0, 25.0);
        net.start_fetch(SimTime::ZERO, 2, 2_500_000_000, 7);
        assert!(net.take_due(SimTime::from_millis(1_995)).is_empty());
        let done = net.take_due(SimTime::from_secs(2));
        assert_eq!(done, vec![(1, 7)]);
        assert_eq!(net.requested_bytes(), net.delivered_bytes());
        assert_eq!(net.inflight_bytes(), 0);
    }

    #[test]
    fn concurrent_fetches_share_the_registry_fairly() {
        // Four simultaneous fetches to four different nodes: each ToR
        // has capacity to spare, the registry splits 4 ways, so each
        // fetch takes 4× the solo time.
        let mut net = plane(4, 10.0, 25.0);
        for node in 0..4 {
            net.start_fetch(SimTime::ZERO, node, 1_250_000_000, node as u32);
        }
        assert!(net.take_due(SimTime::from_millis(3_995)).is_empty(), "4× slowdown");
        let done = net.take_due(SimTime::from_secs(4));
        assert_eq!(done.len(), 4, "equal flows finish together, in id order");
        assert_eq!(done.iter().map(|&(id, _)| id).collect::<Vec<_>>(), vec![1, 2, 3, 4]);
        assert_eq!(net.delivered_bytes(), 5_000_000_000);
    }

    #[test]
    fn tor_bottleneck_caps_a_node_while_others_run_free() {
        // Two fetches to node 0 (ToR 5 Gbps < registry 20 Gbps / 3 flows
        // after max-min) and one to node 1: node 0's pair is capped at
        // 2.5 Gbps each by its ToR; node 1's flow takes the registry
        // remainder (15 Gbps) but is capped by its own 5 Gbps ToR.
        let mut net = plane(2, 20.0, 5.0);
        net.start_fetch(SimTime::ZERO, 0, 625_000_000, 0); // 2.5 Gbps -> 2 s
        net.start_fetch(SimTime::ZERO, 0, 625_000_000, 1); // 2.5 Gbps -> 2 s
        net.start_fetch(SimTime::ZERO, 1, 625_000_000, 2); // 5 Gbps -> 1 s
        let done = net.take_due(SimTime::from_secs(1));
        assert_eq!(done, vec![(3, 2)], "node 1 finishes at its ToR line rate");
        let done = net.take_due(SimTime::from_secs(2));
        assert_eq!(done.iter().map(|&(id, _)| id).collect::<Vec<_>>(), vec![1, 2]);
    }

    #[test]
    fn completion_releases_bandwidth_to_survivors() {
        // Two equal fetches split the 10 Gbps registry; when the short
        // one finishes, the long one doubles its rate from that instant.
        let mut net = plane(2, 10.0, 25.0);
        net.start_fetch(SimTime::ZERO, 0, 625_000_000, 0); // 1 s at half rate
        net.start_fetch(SimTime::ZERO, 1, 1_250_000_000, 1);
        let done = net.take_due(SimTime::from_secs(1));
        assert_eq!(done, vec![(1, 0)]);
        // Flow 2 delivered 625 MB in the shared second; the remaining
        // 625 MB at full 1.25 GB/s takes 0.5 s more.
        assert_eq!(net.inflight_bytes(), 625_000_000);
        assert!(net.take_due(SimTime::from_micros(1_495_000)).is_empty());
        let done = net.take_due(SimTime::from_micros(1_500_000));
        assert_eq!(done, vec![(2, 1)]);
    }

    #[test]
    fn same_node_transfers_ride_the_nvlink() {
        // 200 Gbps NVLink = 25 GB/s: 2.5 GB in 100 ms, untouched by a
        // saturated registry.
        let mut net = plane(2, 10.0, 25.0);
        net.start_fetch(SimTime::ZERO, 0, 12_500_000_000, 9); // hog the registry
        net.start_transfer(SimTime::ZERO, 1, 1, 2_500_000_000, 1);
        let done = net.take_due(SimTime::from_millis(100));
        assert_eq!(done, vec![(2, 1)]);
    }

    #[test]
    fn cross_node_transfers_contend_on_both_tors() {
        // A fetch into node 1 and a node 0 → node 1 transfer share node
        // 1's 10 Gbps ToR (registry is fat): each gets 5 Gbps.
        let mut net = plane(2, 100.0, 10.0);
        net.start_fetch(SimTime::ZERO, 1, 625_000_000, 0);
        net.start_transfer(SimTime::ZERO, 0, 1, 625_000_000, 1);
        assert!(net.take_due(SimTime::from_millis(995)).is_empty());
        let done = net.take_due(SimTime::from_secs(1));
        assert_eq!(done.len(), 2, "equal split of the shared ToR");
    }

    #[test]
    fn conservation_ledger_holds_at_every_grid_instant() {
        let mut net = plane(3, 7.5, 12.5);
        let mut t = SimTime::ZERO;
        net.start_fetch(t, 0, 3_000_000_000, 0);
        net.start_fetch(t, 1, 1_000_000_000, 1);
        let mut completed = 0;
        while net.active_flows() > 0 {
            t += SimDuration::from_millis(5);
            completed += net.take_due(t).len();
            assert_eq!(
                net.requested_bytes(),
                net.delivered_bytes() + net.inflight_bytes(),
                "ledger must balance at {t}"
            );
            if t == SimTime::from_millis(500) {
                net.start_transfer(t, 0, 2, 500_000_000, 2);
            }
        }
        assert_eq!(completed, 3);
        assert_eq!(net.requested_bytes(), net.delivered_bytes());
    }

    #[test]
    fn finish_instants_are_grid_aligned() {
        let mut net = plane(1, 10.0, 25.0);
        net.start_fetch(SimTime::ZERO, 0, 1_234_567, 0);
        for at in net.finish_instants() {
            assert_eq!(at.as_micros() % 5_000, 0, "finish {at} must sit on the grid");
        }
    }

    #[test]
    fn zero_byte_flows_are_floored_to_one_byte() {
        let mut net = plane(1, 10.0, 25.0);
        net.start_fetch(SimTime::ZERO, 0, 0, 0);
        assert_eq!(net.requested_bytes(), 1);
        assert_eq!(net.inflight_bytes(), 1);
        let done = net.take_due(SimTime::from_millis(5));
        assert_eq!(done.len(), 1, "a floored flow still takes one grid step");
    }

    #[test]
    fn polling_with_nothing_due_is_a_no_op() {
        let mut net = plane(1, 10.0, 25.0);
        net.start_fetch(SimTime::ZERO, 0, 1_250_000_000, 0);
        let before_inflight = net.inflight_bytes();
        let before_delivered = net.delivered_bytes();
        for ms in (5..1000).step_by(5) {
            assert!(net.take_due(SimTime::from_millis(ms)).is_empty());
        }
        assert_eq!(net.inflight_bytes(), before_inflight, "no membership change, no mutation");
        assert_eq!(net.delivered_bytes(), before_delivered);
    }

    // ------------------------------------------------------------------
    // Incremental ≡ full re-share
    // ------------------------------------------------------------------

    /// Splitmix64: tiny deterministic generator for the property tests
    /// (seeded, no ambient randomness).
    fn splitmix(state: &mut u64) -> u64 {
        *state = state.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = *state;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }

    /// Every flow's incremental rate equals the full water-fill oracle's.
    fn assert_rates_match_oracle(net: &NetPlane<u32>, ctx: &str) {
        let full = net.full_water_fill_rates();
        for (id, _, _) in net.pending() {
            let rate = net.flows[&id].rate;
            assert_eq!(rate, full[&id], "{ctx}: flow {id} diverged from the full re-share");
        }
    }

    #[test]
    fn incremental_reshare_matches_full_on_random_sequences() {
        for seed in 0..6u64 {
            let mut rng = seed.wrapping_mul(0x5851_F42D_4C95_7F2D) ^ 0xC0FF_EE11;
            let mut net = plane(8, 12.5, 10.0);
            let mut t = SimTime::ZERO;
            for step in 0..400 {
                t += SimDuration::from_millis(5 * (splitmix(&mut rng) % 20));
                match splitmix(&mut rng) % 4 {
                    // Arrivals: fetches and transfers to random nodes,
                    // storm-sized byte counts.
                    0 | 1 => {
                        let node = (splitmix(&mut rng) % 8) as usize;
                        let bytes = 1_000_000 + splitmix(&mut rng) % 2_000_000_000;
                        net.start_fetch(t, node, bytes, step);
                    }
                    2 => {
                        let src = (splitmix(&mut rng) % 8) as usize;
                        let dst = (splitmix(&mut rng) % 8) as usize;
                        let bytes = 1_000_000 + splitmix(&mut rng) % 500_000_000;
                        net.start_transfer(t, src, dst, bytes, step);
                    }
                    // Departures: jump far enough ahead that something
                    // (often a batch) finishes.
                    _ => {
                        t += SimDuration::from_secs(splitmix(&mut rng) % 4);
                        net.take_due(t);
                    }
                }
                assert_rates_match_oracle(&net, "after random op");
                assert_eq!(
                    net.requested_bytes(),
                    net.delivered_bytes() + net.inflight_bytes(),
                    "ledger must balance (seed {seed}, step {step})"
                );
            }
            // Drain: every flow completes, the ledger closes.
            let mut guard = 0;
            while net.active_flows() > 0 {
                t += SimDuration::from_secs(600);
                net.take_due(t);
                assert_rates_match_oracle(&net, "during drain");
                guard += 1;
                assert!(guard < 10_000, "flows must drain (seed {seed})");
            }
            assert_eq!(net.requested_bytes(), net.delivered_bytes());
        }
    }

    #[test]
    fn same_instant_join_and_leave_matches_the_full_reshare() {
        // A simultaneous join+leave is the hardest membership change: a
        // flow finishes at instant t while another starts at exactly t.
        // The driver makes two calls in some order, each an incremental
        // re-share, and both orders must land bit-identically on the
        // full water-fill. This is the release-build regression for the
        // debug-only in-plane oracle: it differences the incremental
        // rates against `full_water_fill_rates()` explicitly, so
        // `cargo test --release` exercises it with debug_assertions off.
        for seed in 0..8u64 {
            let mut rng = seed.wrapping_mul(0x9E37_79B9_7F4A_7C15) ^ 0x5EED;
            let mut net = plane(6, 12.5, 10.0);
            let mut t = SimTime::ZERO;
            let mut tag = 0u32;
            for round in 0..150 {
                // Keep a few flows alive so a finish instant exists.
                while net.active_flows() < 3 {
                    let node = (splitmix(&mut rng) % 6) as usize;
                    let bytes = 5_000_000 + splitmix(&mut rng) % 400_000_000;
                    if splitmix(&mut rng).is_multiple_of(2) {
                        net.start_fetch(t, node, bytes, tag);
                    } else {
                        let src = (splitmix(&mut rng) % 6) as usize;
                        net.start_transfer(t, src, node, bytes, tag);
                    }
                    tag += 1;
                    assert_rates_match_oracle(&net, "refill");
                }
                // Jump exactly onto the earliest finish instant.
                t = net.finish_instants().min().expect("active flows have finishes");
                let node = (splitmix(&mut rng) % 6) as usize;
                let bytes = 1_000_000 + splitmix(&mut rng) % 200_000_000;
                if splitmix(&mut rng).is_multiple_of(2) {
                    // Leave, then join at the same instant.
                    let done = net.take_due(t);
                    assert!(!done.is_empty(), "seed {seed} round {round}: missed the finish");
                    assert_rates_match_oracle(&net, "after same-instant leave");
                    net.start_fetch(t, node, bytes, tag);
                } else {
                    // Join, then leave at the same instant. The join's
                    // re-share may slow the due flow past its old finish
                    // (rescuing it is legitimate); the rates must match
                    // the oracle either way.
                    net.start_fetch(t, node, bytes, tag);
                    assert_rates_match_oracle(&net, "after same-instant join");
                    net.take_due(t);
                }
                tag += 1;
                assert_rates_match_oracle(&net, "after same-instant churn");
                assert_eq!(
                    net.requested_bytes(),
                    net.delivered_bytes() + net.inflight_bytes(),
                    "ledger must balance (seed {seed}, round {round})"
                );
            }
            // Drain: every flow completes, the ledger closes.
            let mut guard = 0;
            while net.active_flows() > 0 {
                t += SimDuration::from_secs(600);
                net.take_due(t);
                assert_rates_match_oracle(&net, "during drain");
                guard += 1;
                assert!(guard < 10_000, "flows must drain (seed {seed})");
            }
            assert_eq!(net.requested_bytes(), net.delivered_bytes());
        }
    }

    #[test]
    fn storm_departures_only_touch_their_component() {
        // A registry storm on nodes 0..4 and an independent NVLink
        // transfer on node 7: the transfer's rate must survive every
        // storm membership change untouched (disjoint component).
        let mut net = plane(8, 10.0, 25.0);
        for node in 0..4 {
            net.start_fetch(SimTime::ZERO, node, 1_250_000_000 * (node as u64 + 1), node as u32);
        }
        let nv = net.start_transfer(SimTime::ZERO, 7, 7, 50_000_000_000, 99);
        let nv_rate = net.flows[&nv].rate;
        let mut t = SimTime::ZERO;
        while net.flows.contains_key(&nv) && net.active_flows() > 1 {
            t += SimDuration::from_secs(1);
            net.take_due(t);
            if let Some(flow) = net.flows.get(&nv) {
                assert_eq!(flow.rate, nv_rate, "disjoint component re-rated at {t}");
            }
            assert_rates_match_oracle(&net, "storm departure");
        }
    }
}

//! Network plane for the Dilu reproduction: cold starts and pipeline
//! transfers pay for bytes.
//!
//! The serving plane's cold start was a flat per-model delay and its
//! pipeline stage transfer a constant; neither contends. This crate
//! models the part of the datacenter those constants hide:
//!
//! * a **topology** ([`NetworkConfig`]) — every node sits behind a
//!   top-of-rack (ToR) link feeding a shared core/registry link, plus an
//!   intra-node NVLink-class link, each with a configurable Gbps;
//! * a **flow plane** ([`NetPlane`]) — weight fetches and activation
//!   transfers are *flows* over link paths, sharing bandwidth max-min
//!   fairly. Rates are recomputed only at membership changes (a flow
//!   starting or finishing), so a k-way cold-start storm on one registry
//!   link slows every fetch by ~k while a lone fetch runs at line rate;
//! * a per-node **model cache** ([`ModelCache`]) — weights fetched once
//!   stay resident up to a byte capacity with LRU eviction, so a warm
//!   node pays only the provision residue, never the fetch.
//!
//! Everything is integer arithmetic over microsecond timestamps and
//! byte counts: the plane is deterministic by construction, and both
//! cluster time models (dense-quantum and event-driven) drive it through
//! the same [`NetPlane::take_due`] entry point at quantum-grid instants,
//! so reports stay byte-identical across time models and thread counts.
//!
//! # Examples
//!
//! ```
//! use dilu_net::{NetPlane, NetworkConfig};
//! use dilu_sim::{SimDuration, SimTime};
//!
//! let cfg = NetworkConfig::default();
//! let mut net: NetPlane<&'static str> = NetPlane::new(2, &cfg, SimDuration::from_millis(5));
//! net.start_fetch(SimTime::ZERO, 0, 1_250_000_000, "weights");
//! // 1.25 GB over the 10 Gbps registry link = 1 s, grid-aligned.
//! let done = net.take_due(SimTime::from_secs(1));
//! assert_eq!(done, vec![(1, "weights")]);
//! assert_eq!(net.delivered_bytes(), net.requested_bytes());
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod cache;
mod flow;

pub use cache::ModelCache;
pub use flow::{FlowId, NetPlane};

use dilu_sim::SimDuration;

/// Bytes per second of a 1 Gbps link (decimal gigabit: 10⁹ bits / 8).
pub const BYTES_PER_GBPS: f64 = 125_000_000.0;

/// One gibibyte, the unit of [`NetworkConfig::cache_gb`].
pub const GIB: u64 = 1 << 30;

/// The network topology and cache shape.
///
/// The topology is deliberately simple — a two-level tree plus an
/// intra-node link — because what matters for serving is *contention*,
/// not routing: every node's ToR uplink feeds one shared core link where
/// the model registry lives, so concurrent cold starts on different
/// nodes contend at the registry while pipeline transfers between nodes
/// contend pairwise on their ToR links.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct NetworkConfig {
    /// Capacity of the shared core/registry link, in Gbps.
    pub registry_gbps: f64,
    /// Capacity of each node's top-of-rack uplink, in Gbps.
    pub tor_gbps: f64,
    /// Capacity of each node's intra-node (NVLink-class) link, in Gbps —
    /// what same-node pipeline stage transfers ride on.
    pub nvlink_gbps: f64,
    /// Per-node model cache capacity in GiB; `0` disables caching (every
    /// cold start fetches from the registry).
    pub cache_gb: f64,
    /// Warm-up residue paid after the weights are local (container
    /// provision, runtime init) — the part of a cold start that bytes
    /// cannot explain. Cache hits pay exactly this.
    pub provision: SimDuration,
}

impl Default for NetworkConfig {
    fn default() -> Self {
        NetworkConfig {
            registry_gbps: 10.0,
            tor_gbps: 25.0,
            nvlink_gbps: 200.0,
            cache_gb: 0.0,
            provision: SimDuration::from_secs(2),
        }
    }
}

impl NetworkConfig {
    /// Names accepted by [`NetworkConfig::preset`].
    pub const PRESET_NAMES: [&'static str; 3] = ["datacenter", "edge", "congested"];

    /// A named preset topology, or `None` for an unknown name.
    ///
    /// * `"datacenter"` — fat links (100/100/400 Gbps) and a 32 GiB
    ///   cache: fetches are fast and mostly avoided.
    /// * `"edge"` — thin uplinks (2.5/10/50 Gbps) and an 8 GiB cache:
    ///   cold starts are dominated by the registry link.
    /// * `"congested"` — the default link tiers with no cache: every
    ///   launch fetches, storms contend at the 10 Gbps registry.
    pub fn preset(name: &str) -> Option<NetworkConfig> {
        match name {
            "datacenter" => Some(NetworkConfig {
                registry_gbps: 100.0,
                tor_gbps: 100.0,
                nvlink_gbps: 400.0,
                cache_gb: 32.0,
                ..NetworkConfig::default()
            }),
            "edge" => Some(NetworkConfig {
                registry_gbps: 2.5,
                tor_gbps: 10.0,
                nvlink_gbps: 50.0,
                cache_gb: 8.0,
                ..NetworkConfig::default()
            }),
            "congested" => Some(NetworkConfig::default()),
            _ => None,
        }
    }

    /// Validates the shape, returning a description of the first problem.
    ///
    /// # Errors
    ///
    /// Non-finite or non-positive link capacities and a non-finite or
    /// negative cache size are rejected.
    pub fn validate(&self) -> Result<(), String> {
        for (name, gbps) in [
            ("registry_gbps", self.registry_gbps),
            ("tor_gbps", self.tor_gbps),
            ("nvlink_gbps", self.nvlink_gbps),
        ] {
            if !gbps.is_finite() || gbps <= 0.0 {
                return Err(format!("[network] {name} must be a positive number, got {gbps}"));
            }
        }
        if !self.cache_gb.is_finite() || self.cache_gb < 0.0 {
            return Err(format!("[network] cache_gb must be >= 0, got {}", self.cache_gb));
        }
        Ok(())
    }

    /// The per-node cache capacity in bytes.
    pub fn cache_bytes(&self) -> u64 {
        (self.cache_gb * GIB as f64).round() as u64
    }
}

/// Converts a link capacity in Gbps to whole bytes per second.
pub(crate) fn gbps_to_bytes(gbps: f64) -> u64 {
    ((gbps * BYTES_PER_GBPS).round() as u64).max(1)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn presets_resolve_and_validate() {
        for name in NetworkConfig::PRESET_NAMES {
            let cfg = NetworkConfig::preset(name).expect(name);
            cfg.validate().expect(name);
        }
        assert_eq!(NetworkConfig::preset("no-such-preset"), None);
        assert_eq!(NetworkConfig::preset("congested"), Some(NetworkConfig::default()));
    }

    #[test]
    fn validate_rejects_bad_shapes() {
        let bad = NetworkConfig { registry_gbps: 0.0, ..NetworkConfig::default() };
        assert!(bad.validate().is_err());
        let bad = NetworkConfig { tor_gbps: f64::NAN, ..NetworkConfig::default() };
        assert!(bad.validate().is_err());
        let bad = NetworkConfig { cache_gb: -1.0, ..NetworkConfig::default() };
        assert!(bad.validate().is_err());
        NetworkConfig::default().validate().expect("default is valid");
    }

    #[test]
    fn unit_conversions() {
        assert_eq!(gbps_to_bytes(10.0), 1_250_000_000);
        assert_eq!(gbps_to_bytes(0.000_000_001), 1, "floors at one byte/s");
        let cfg = NetworkConfig { cache_gb: 2.0, ..NetworkConfig::default() };
        assert_eq!(cfg.cache_bytes(), 2 * GIB);
    }
}

//! Property tests of the flow plane's contention fairness: k equal
//! concurrent fetches over one shared registry link each finish in ~k×
//! the solo time, and the byte ledger balances at every grid instant.

use dilu_net::{NetPlane, NetworkConfig};
use dilu_sim::{SimDuration, SimTime};
use proptest::prelude::*;

const Q: SimDuration = SimDuration::from_millis(5);

fn plane(nodes: usize, registry_gbps: f64, tor_gbps: f64) -> NetPlane<usize> {
    let cfg =
        NetworkConfig { registry_gbps, tor_gbps, nvlink_gbps: 400.0, ..NetworkConfig::default() };
    NetPlane::new(nodes, &cfg, Q)
}

/// Steps the plane on the quantum grid until every flow completed,
/// recording each flow's completion instant (indexed by payload).
fn drain(net: &mut NetPlane<usize>, flows: usize) -> Vec<SimTime> {
    let mut finished = vec![SimTime::ZERO; flows];
    let mut t = SimTime::ZERO;
    let budget = SimTime::from_secs(40_000);
    while net.active_flows() > 0 {
        t += Q;
        assert!(t < budget, "flows must drain");
        for (_, payload) in net.take_due(t) {
            finished[payload] = t;
        }
        assert_eq!(
            net.requested_bytes(),
            net.delivered_bytes() + net.inflight_bytes(),
            "byte ledger must balance at {t}"
        );
    }
    finished
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    /// k equal fetches to k distinct nodes, ToRs fat enough that the
    /// registry is the only bottleneck: every fetch finishes within one
    /// grid quantum of k × the solo time.
    #[test]
    fn k_concurrent_fetches_cost_k_times_solo(
        k in 1usize..12,
        registry_gbps in 1u32..40,
        megabytes in 64u64..4096,
    ) {
        let registry_gbps = f64::from(registry_gbps);
        let bytes = megabytes * 1_000_000;
        // ToR fat enough (> registry) that only the registry contends.
        let tor = registry_gbps * 2.0;

        let mut solo = plane(k, registry_gbps, tor);
        solo.start_fetch(SimTime::ZERO, 0, bytes, 0);
        let solo_done = drain(&mut solo, 1)[0];

        let mut storm = plane(k, registry_gbps, tor);
        for node in 0..k {
            storm.start_fetch(SimTime::ZERO, node, bytes, node);
        }
        let finished = drain(&mut storm, k);

        let solo_us = solo_done.as_micros();
        let expected_us = solo_us * k as u64;
        for (node, done) in finished.iter().enumerate() {
            let got = done.as_micros();
            // The solo baseline is grid-rounded up by < 1 quantum, and
            // scaling by k amplifies that by k; the storm itself only
            // rounds once. So: within k quanta below, one above.
            prop_assert!(
                got >= expected_us.saturating_sub(Q.as_micros() * k as u64)
                    && got <= expected_us + Q.as_micros(),
                "fetch to node {node} finished at {got}us, expected ~{expected_us}us \
                 (solo {solo_us}us × {k})"
            );
        }
    }

    /// Unequal arrival instants: flows that start while others are in
    /// flight trigger a reshare, and the ledger still balances at every
    /// grid instant (checked inside `drain`); every flow completes.
    #[test]
    fn staggered_storms_conserve_bytes(
        sizes in proptest::collection::vec(1u64..2_000, 1..10),
        stagger_ms in proptest::collection::vec(0u64..500, 1..10),
    ) {
        let n = sizes.len().min(stagger_ms.len());
        let mut net = plane(n, 10.0, 25.0);
        let mut t = SimTime::ZERO;
        let mut started = 0;
        let mut finished = 0;
        let mut starts: Vec<(SimTime, usize)> = (0..n)
            .map(|i| (SimTime::from_micros(stagger_ms[i] * 1_000 / 5_000 * 5_000), i))
            .collect();
        starts.sort();
        while finished < n {
            for &(at, i) in &starts {
                if at == t {
                    net.start_fetch(t, i, sizes[i] * 1_000_000, i);
                    started += 1;
                }
            }
            t += Q;
            finished += net.take_due(t).len();
            prop_assert_eq!(
                net.requested_bytes(),
                net.delivered_bytes() + net.inflight_bytes()
            );
        }
        prop_assert_eq!(started, n);
        prop_assert_eq!(net.requested_bytes(), net.delivered_bytes());
    }

    /// Random arrival/departure churn: every membership change runs the
    /// *incremental* component-local re-share, and in debug builds (where
    /// this suite runs) the plane differences each result against the
    /// retained full water-fill and panics on any divergence — so this
    /// test is the seeded incremental ≡ full property, fuzz-style. The
    /// ledger assertions below additionally pin byte conservation across
    /// the whole sequence.
    #[test]
    fn random_churn_matches_full_reshare(
        dst in proptest::collection::vec(0usize..64, 4..40),
        megabytes in proptest::collection::vec(1u64..3_000, 4..40),
        gaps in proptest::collection::vec(0u64..200, 4..40),
    ) {
        let n = dst.len().min(megabytes.len()).min(gaps.len());
        let mut net = plane(64, 10.0, 25.0);
        let mut t = SimTime::ZERO;
        let mut started = 0usize;
        let mut finished = 0usize;
        for ((&node, &mb), &gap_quanta) in dst.iter().zip(&megabytes).zip(&gaps).take(n) {
            t += Q * gap_quanta;
            // Departures due by now leave first (each a re-share)...
            finished += net.take_due(t).len();
            // ...then a new flow joins and re-shares its component.
            net.start_fetch(t, node % 64, mb * 1_000_000, started);
            started += 1;
            prop_assert_eq!(
                net.requested_bytes(),
                net.delivered_bytes() + net.inflight_bytes()
            );
        }
        while net.active_flows() > 0 {
            t += Q;
            finished += net.take_due(t).len();
        }
        prop_assert_eq!(finished, started);
        prop_assert_eq!(net.requested_bytes(), net.delivered_bytes());
    }
}

//! GPU engine error type.

use std::error::Error;
use std::fmt;

use crate::InstanceId;

/// Errors returned by [`GpuEngine`](crate::GpuEngine) operations.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum GpuError {
    /// Admission would exceed device memory.
    OutOfMemory {
        /// Bytes the instance asked for.
        requested: u64,
        /// Bytes still free on the device.
        available: u64,
    },
    /// An instance with this id is already resident.
    DuplicateInstance(InstanceId),
    /// No resident instance has this id.
    UnknownInstance(InstanceId),
}

impl fmt::Display for GpuError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            GpuError::OutOfMemory { requested, available } => {
                write!(f, "device memory exhausted: requested {requested} bytes, {available} free")
            }
            GpuError::DuplicateInstance(id) => write!(f, "instance {id} already resident"),
            GpuError::UnknownInstance(id) => write!(f, "instance {id} not resident"),
        }
    }
}

impl Error for GpuError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn errors_are_send_sync_and_display() {
        fn assert_send_sync<T: Send + Sync>() {}
        assert_send_sync::<GpuError>();
        let e = GpuError::OutOfMemory { requested: 10, available: 5 };
        assert!(format!("{e}").contains("exhausted"));
        assert!(format!("{}", GpuError::UnknownInstance(InstanceId(3))).contains("inst-3"));
    }
}

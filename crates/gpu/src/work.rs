//! Work items executed by instance slots.

use dilu_sim::SimDuration;
use serde::{Deserialize, Serialize};

use crate::SmRate;

/// What a work item does while it occupies the head of a slot's queue.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub enum WorkKind {
    /// A kernel-launching phase: one inference batch execution or one
    /// training forward+backward step.
    Compute {
        /// Duration when granted at least `sat` SM rate.
        t_min: SimDuration,
        /// SM rate at which the kernel stream saturates.
        sat: SmRate,
        /// Kernel blocks issued over the phase (the RCKM token currency).
        kernel_blocks: u64,
    },
    /// A non-SM phase: NCCL gradient synchronisation, pipeline bubble,
    /// pre/post-processing. Elapses in wall time regardless of grants.
    Idle {
        /// Wall-clock duration of the phase.
        duration: SimDuration,
    },
}

/// A unit of work queued on an instance slot.
///
/// The `tag` is an opaque caller-provided correlation id reported back in
/// [`Completion`](crate::Completion).
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct WorkItem {
    /// What the item does.
    pub kind: WorkKind,
    /// Caller correlation id echoed on completion.
    pub tag: u64,
}

impl WorkItem {
    /// Creates a compute phase.
    ///
    /// # Panics
    ///
    /// Panics if `t_min` is zero or `sat` is zero.
    pub fn compute(t_min: SimDuration, sat: SmRate, kernel_blocks: u64, tag: u64) -> Self {
        assert!(!t_min.is_zero(), "compute phase needs a positive duration");
        assert!(!sat.is_zero(), "compute phase needs a positive saturation rate");
        WorkItem { kind: WorkKind::Compute { t_min, sat, kernel_blocks }, tag }
    }

    /// Creates an idle (communication/bubble) phase.
    pub fn idle(duration: SimDuration, tag: u64) -> Self {
        WorkItem { kind: WorkKind::Idle { duration }, tag }
    }

    /// The SM demand of this item: `sat` for compute, zero for idle.
    pub fn demand(&self) -> SmRate {
        match self.kind {
            WorkKind::Compute { sat, .. } => sat,
            WorkKind::Idle { .. } => SmRate::ZERO,
        }
    }

    /// The duration of this item under ideal provisioning.
    pub fn ideal_duration(&self) -> SimDuration {
        match self.kind {
            WorkKind::Compute { t_min, .. } => t_min,
            WorkKind::Idle { duration } => duration,
        }
    }

    /// Kernel blocks this item will issue in total.
    pub fn kernel_blocks(&self) -> u64 {
        match self.kind {
            WorkKind::Compute { kernel_blocks, .. } => kernel_blocks,
            WorkKind::Idle { .. } => 0,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn compute_demand_is_saturation() {
        let w = WorkItem::compute(SimDuration::from_millis(10), SmRate::from_percent(40.0), 100, 1);
        assert_eq!(w.demand(), SmRate::from_percent(40.0));
        assert_eq!(w.ideal_duration(), SimDuration::from_millis(10));
        assert_eq!(w.kernel_blocks(), 100);
    }

    #[test]
    fn idle_demands_nothing() {
        let w = WorkItem::idle(SimDuration::from_millis(3), 2);
        assert_eq!(w.demand(), SmRate::ZERO);
        assert_eq!(w.kernel_blocks(), 0);
    }

    #[test]
    #[should_panic(expected = "positive duration")]
    fn zero_compute_rejected() {
        WorkItem::compute(SimDuration::ZERO, SmRate::FULL, 1, 0);
    }
}

//! The SM-rate → progress-rate model.
//!
//! A DL kernel stream saturates at a model/batch-specific SM rate `sat`:
//! above it extra SMs buy nothing (the paper's "marginal effect" — e.g. a
//! 2% boost doubling RoBERTa-large's SMR from 50% to 100%). Below the knee,
//! returns diminish smoothly (`rate = (eff/sat)^0.8`): each extra SM helps,
//! but less than the previous one. This is what makes the paper's
//! throughput-efficacy metric TE = throughput/SMR *decrease* with SMR, so
//! the Hybrid Growth Search stars sit at the lowest SLO-feasible SM rate
//! (Fig. 4) and leave headroom between `request` and saturation that
//! Dilu's fast scale-up exploits during bursts.

/// Concavity exponent of the sub-saturation region.
pub(crate) const SUB_SAT_EXPONENT: f64 = 0.8;

/// Progress-rate factor in `[0, 1]` for an effective SM rate `eff` against a
/// saturation rate `sat` (both as fractions of the GPU).
///
/// * `eff >= sat` → `1.0` (saturated; extra SMs are wasted);
/// * `eff < sat` → `(eff/sat)^0.8`: concave, diminishing returns.
///
/// Returns `0.0` when `eff` is zero or `sat` is zero.
///
/// # Examples
///
/// ```
/// use dilu_gpu::rate_factor;
///
/// assert_eq!(rate_factor(0.8, 0.5), 1.0); // saturated
/// let half = rate_factor(0.25, 0.5);
/// assert!(half > 0.5 && half < 1.0); // concave below the knee
/// assert_eq!(rate_factor(0.0, 0.5), 0.0);
/// ```
pub fn rate_factor(eff: f64, sat: f64) -> f64 {
    if eff <= 0.0 || sat <= 0.0 {
        return 0.0;
    }
    let x = (eff / sat).min(1.0);
    x.powf(SUB_SAT_EXPONENT)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn saturates_at_one() {
        assert_eq!(rate_factor(0.5, 0.5), 1.0);
        assert_eq!(rate_factor(1.0, 0.3), 1.0);
    }

    #[test]
    fn monotonically_increasing_below_sat() {
        let mut last = 0.0;
        for i in 1..=10 {
            let eff = i as f64 * 0.05;
            let r = rate_factor(eff, 0.5);
            assert!(r > last, "rate factor must increase: {r} vs {last}");
            last = r;
        }
    }

    #[test]
    fn below_sat_has_diminishing_returns() {
        // Concavity: equal SM increments yield shrinking rate gains.
        let r1 = rate_factor(0.125, 0.5);
        let r2 = rate_factor(0.25, 0.5);
        let r3 = rate_factor(0.375, 0.5);
        let r4 = rate_factor(0.5, 0.5);
        assert!(r2 - r1 > r3 - r2, "marginal gain must shrink");
        assert!(r3 - r2 > r4 - r3, "marginal gain must keep shrinking");
        assert!(r2 > 0.5, "concave curve exceeds proportional share");
    }

    #[test]
    fn throughput_efficacy_decreases_with_smr() {
        // TE = rate / eff strictly decreases below and above the knee, so
        // the cost-efficient operating point is the lowest feasible SMR.
        let sat = 0.4;
        let te = |eff: f64| rate_factor(eff, sat) / eff;
        let mut last = f64::INFINITY;
        for eff in [0.1, 0.2, 0.3, 0.4, 0.6, 1.0] {
            let t = te(eff);
            assert!(t < last, "TE must decrease with SMR: {t} vs {last}");
            last = t;
        }
    }

    #[test]
    fn zero_inputs_give_zero() {
        assert_eq!(rate_factor(0.0, 0.5), 0.0);
        assert_eq!(rate_factor(0.5, 0.0), 0.0);
    }
}

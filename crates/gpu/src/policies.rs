//! Elementary share policies shipped with the engine.
//!
//! These are building blocks and references: the interesting policies —
//! Dilu's RCKM (crate `dilu-rckm`) and the MPS/TGS/FaST-GS baselines (crate
//! `dilu-baselines`) — implement [`SharePolicy`] on top of the same views.

use dilu_sim::{SimDuration, SimTime};

use crate::{Grant, InstanceId, InstanceView, SharePolicy, SmRate};

/// Grants every instance the full GPU; the engine's physical resolution then
/// shares capacity proportionally to demand.
///
/// This models an unmanaged GPU (no MPS, no tokens): all co-resident kernel
/// streams contend freely. With a single resident instance it is exactly the
/// paper's *Exclusive* pass-through mode.
#[derive(Debug, Clone, Copy, Default)]
pub struct FairSharePolicy;

impl SharePolicy for FairSharePolicy {
    fn allocate(
        &mut self,
        now: SimTime,
        quantum: SimDuration,
        views: &[InstanceView],
    ) -> Vec<Grant> {
        let mut out = Vec::new();
        self.allocate_into(now, quantum, views, &mut out);
        out
    }

    fn allocate_into(
        &mut self,
        _now: SimTime,
        _quantum: SimDuration,
        views: &[InstanceView],
        out: &mut Vec<Grant>,
    ) {
        out.clear();
        out.extend(views.iter().map(|v| Grant { id: v.id, smr: SmRate::FULL }));
    }

    fn name(&self) -> &str {
        "fair-share"
    }
}

/// A static spatial partition: each instance is permanently capped at a
/// fixed SM rate, like NVIDIA MPS's `CUDA_MPS_ACTIVE_THREAD_PERCENTAGE`.
///
/// Unlisted instances receive zero. Idle partitions strand their SM share —
/// the fragmentation source Dilu eliminates.
///
/// # Examples
///
/// ```
/// use dilu_gpu::policies::StaticPartitionPolicy;
/// use dilu_gpu::{InstanceId, SmRate};
///
/// let mps = StaticPartitionPolicy::new([
///     (InstanceId(1), SmRate::from_percent(30.0)),
///     (InstanceId(2), SmRate::from_percent(70.0)),
/// ]);
/// assert_eq!(mps.quota(InstanceId(1)), Some(SmRate::from_percent(30.0)));
/// ```
#[derive(Debug, Clone, Default)]
pub struct StaticPartitionPolicy {
    quotas: Vec<(InstanceId, SmRate)>,
}

impl StaticPartitionPolicy {
    /// Creates a partition from `(instance, quota)` pairs.
    pub fn new<I: IntoIterator<Item = (InstanceId, SmRate)>>(quotas: I) -> Self {
        StaticPartitionPolicy { quotas: quotas.into_iter().collect() }
    }

    /// Adds or replaces an instance's static quota.
    pub fn set_quota(&mut self, id: InstanceId, quota: SmRate) {
        match self.quotas.iter_mut().find(|(qid, _)| *qid == id) {
            Some((_, q)) => *q = quota,
            None => self.quotas.push((id, quota)),
        }
    }

    /// Removes an instance's quota (it will be granted zero afterwards).
    pub fn remove(&mut self, id: InstanceId) {
        self.quotas.retain(|(qid, _)| *qid != id);
    }

    /// The static quota of `id`, if registered.
    pub fn quota(&self, id: InstanceId) -> Option<SmRate> {
        self.quotas.iter().find(|(qid, _)| *qid == id).map(|&(_, q)| q)
    }
}

impl SharePolicy for StaticPartitionPolicy {
    fn allocate(
        &mut self,
        now: SimTime,
        quantum: SimDuration,
        views: &[InstanceView],
    ) -> Vec<Grant> {
        let mut out = Vec::new();
        self.allocate_into(now, quantum, views, &mut out);
        out
    }

    fn allocate_into(
        &mut self,
        _now: SimTime,
        _quantum: SimDuration,
        views: &[InstanceView],
        out: &mut Vec<Grant>,
    ) {
        out.clear();
        out.extend(
            views.iter().map(|v| Grant { id: v.id, smr: self.quota(v.id).unwrap_or(SmRate::ZERO) }),
        );
    }

    fn name(&self) -> &str {
        "static-partition"
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::TaskClass;

    fn view(id: u64, demand: f64) -> InstanceView {
        InstanceView {
            id: InstanceId(id),
            class: TaskClass::SloSensitive,
            request: SmRate::from_percent(20.0),
            limit: SmRate::from_percent(40.0),
            demand: SmRate::from_percent(demand),
            queue_len: 1,
            blocks_last_quantum: 0,
            klc_inflation: 0.0,
            idle_quanta: 0,
        }
    }

    #[test]
    fn fair_share_grants_full_to_all() {
        let grants =
            FairSharePolicy.allocate(SimTime::ZERO, SimDuration::from_millis(5), &[view(1, 50.0)]);
        assert_eq!(grants, vec![Grant { id: InstanceId(1), smr: SmRate::FULL }]);
    }

    #[test]
    fn static_partition_caps_and_updates() {
        let mut mps = StaticPartitionPolicy::new([(InstanceId(1), SmRate::from_percent(30.0))]);
        let grants = mps.allocate(
            SimTime::ZERO,
            SimDuration::from_millis(5),
            &[view(1, 90.0), view(2, 90.0)],
        );
        assert_eq!(grants[0].smr, SmRate::from_percent(30.0));
        assert_eq!(grants[1].smr, SmRate::ZERO);

        mps.set_quota(InstanceId(2), SmRate::from_percent(50.0));
        mps.set_quota(InstanceId(1), SmRate::from_percent(40.0));
        assert_eq!(mps.quota(InstanceId(1)), Some(SmRate::from_percent(40.0)));
        mps.remove(InstanceId(1));
        assert_eq!(mps.quota(InstanceId(1)), None);
    }
}

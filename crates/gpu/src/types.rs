//! Core identifier and quantity newtypes for the GPU model.

use std::fmt;
use std::ops::{Add, AddAssign, Sub};

use serde::{Deserialize, Serialize};

/// One mebibyte, in bytes.
pub const MB: u64 = 1 << 20;

/// One gibibyte, in bytes.
pub const GB: u64 = 1 << 30;

/// An opaque identifier for an instance resident on a GPU.
///
/// Cluster-level code allocates these; the engine only requires uniqueness
/// per GPU.
#[derive(
    Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default, Serialize, Deserialize,
)]
pub struct InstanceId(pub u64);

impl fmt::Display for InstanceId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "inst-{}", self.0)
    }
}

/// A GPU streaming-multiprocessor rate as a fraction of one whole GPU.
///
/// `1.0` is the full card (the paper's 100% SM rate). Values are clamped to
/// be non-negative on construction; rates above `1.0` are permitted for
/// *sums* (oversubscription) but a single grant is clamped by the engine.
///
/// # Examples
///
/// ```
/// use dilu_gpu::SmRate;
///
/// let r = SmRate::from_percent(30.0);
/// assert_eq!(r.as_percent(), 30.0);
/// assert_eq!((r + r).as_fraction(), 0.6);
/// ```
#[derive(Debug, Clone, Copy, PartialEq, PartialOrd, Default, Serialize, Deserialize)]
pub struct SmRate(f64);

impl SmRate {
    /// Zero SM rate.
    pub const ZERO: SmRate = SmRate(0.0);

    /// The full GPU.
    pub const FULL: SmRate = SmRate(1.0);

    /// Creates a rate from a fraction of the GPU (`1.0` = whole card).
    ///
    /// # Panics
    ///
    /// Panics if `f` is negative or not finite.
    pub fn from_fraction(f: f64) -> Self {
        assert!(f.is_finite() && f >= 0.0, "invalid SM fraction {f}");
        SmRate(f)
    }

    /// Creates a rate from a percentage (`100.0` = whole card).
    ///
    /// # Panics
    ///
    /// Panics if `p` is negative or not finite.
    pub fn from_percent(p: f64) -> Self {
        Self::from_fraction(p / 100.0)
    }

    /// This rate as a fraction of the GPU.
    pub fn as_fraction(self) -> f64 {
        self.0
    }

    /// This rate as a percentage of the GPU.
    pub fn as_percent(self) -> f64 {
        self.0 * 100.0
    }

    /// The smaller of two rates.
    pub fn min(self, other: SmRate) -> SmRate {
        SmRate(self.0.min(other.0))
    }

    /// The larger of two rates.
    pub fn max(self, other: SmRate) -> SmRate {
        SmRate(self.0.max(other.0))
    }

    /// Scales this rate by `factor` (clamped non-negative).
    pub fn scale(self, factor: f64) -> SmRate {
        SmRate((self.0 * factor).max(0.0))
    }

    /// `true` if the rate is zero.
    pub fn is_zero(self) -> bool {
        self.0 == 0.0
    }
}

impl Add for SmRate {
    type Output = SmRate;

    fn add(self, rhs: SmRate) -> SmRate {
        SmRate(self.0 + rhs.0)
    }
}

impl AddAssign for SmRate {
    fn add_assign(&mut self, rhs: SmRate) {
        self.0 += rhs.0;
    }
}

impl Sub for SmRate {
    type Output = SmRate;

    fn sub(self, rhs: SmRate) -> SmRate {
        SmRate((self.0 - rhs.0).max(0.0))
    }
}

impl std::iter::Sum for SmRate {
    fn sum<I: Iterator<Item = SmRate>>(iter: I) -> SmRate {
        iter.fold(SmRate::ZERO, Add::add)
    }
}

impl fmt::Display for SmRate {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{:.1}%SM", self.as_percent())
    }
}

/// The scheduling class of a task, as seen by share policies.
///
/// The paper distinguishes SLO-sensitive inference functions from training
/// functions whose QoS is throughput (Algorithm 2 branches on this).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum TaskClass {
    /// Latency-SLO-bound inference.
    SloSensitive,
    /// Throughput-oriented training (or other batch) work.
    BestEffort,
}

impl TaskClass {
    /// `true` for SLO-sensitive inference tasks.
    pub fn is_slo_sensitive(self) -> bool {
        matches!(self, TaskClass::SloSensitive)
    }
}

impl fmt::Display for TaskClass {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            TaskClass::SloSensitive => write!(f, "slo-sensitive"),
            TaskClass::BestEffort => write!(f, "best-effort"),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn percent_and_fraction_agree() {
        assert_eq!(SmRate::from_percent(50.0), SmRate::from_fraction(0.5));
        assert_eq!(SmRate::FULL.as_percent(), 100.0);
    }

    #[test]
    fn subtraction_saturates_at_zero() {
        let a = SmRate::from_percent(20.0);
        let b = SmRate::from_percent(50.0);
        assert_eq!(a - b, SmRate::ZERO);
        assert_eq!(b - a, SmRate::from_percent(30.0));
    }

    #[test]
    fn sums_may_oversubscribe() {
        let total: SmRate = [60.0, 70.0].iter().map(|&p| SmRate::from_percent(p)).sum();
        assert!((total.as_percent() - 130.0).abs() < 1e-9);
    }

    #[test]
    #[should_panic(expected = "invalid SM fraction")]
    fn negative_rate_rejected() {
        SmRate::from_fraction(-0.1);
    }

    #[test]
    fn display_formats() {
        assert_eq!(format!("{}", SmRate::from_percent(32.5)), "32.5%SM");
        assert_eq!(format!("{}", InstanceId(9)), "inst-9");
        assert_eq!(format!("{}", TaskClass::SloSensitive), "slo-sensitive");
    }
}

//! Simulated GPU device for the Dilu reproduction.
//!
//! The paper's prototype throttles real CUDA kernel launches on A100 GPUs;
//! here a GPU is a quantum-stepped proportional-share machine:
//!
//! * a [`GpuEngine`] owns resident instance *slots*, each with a queue of
//!   [`WorkItem`]s (compute phases consume SM rate, idle phases model
//!   communication/bubbles and consume none);
//! * every quantum (default 5 ms, the paper's RCKM token period) a
//!   [`SharePolicy`] grants each slot an SM rate; the engine clamps grants to
//!   per-slot demand, resolves *physical* contention (Σ used ≤ capacity), and
//!   advances work;
//! * kernel-block issuance and kernel-launch-cycle (KLC) inflation are
//!   tracked per slot — exactly the observables Dilu's RCKM (Algorithm 2)
//!   reacts to.
//!
//! # Examples
//!
//! ```
//! use dilu_gpu::{GpuEngine, SlotConfig, SmRate, TaskClass, WorkItem};
//! use dilu_gpu::policies::FairSharePolicy;
//! use dilu_sim::{SimDuration, SimTime};
//!
//! # fn main() -> Result<(), dilu_gpu::GpuError> {
//! let mut gpu = GpuEngine::new(dilu_gpu::GB * 40);
//! let id = dilu_gpu::InstanceId(1);
//! gpu.admit(id, SlotConfig {
//!     class: TaskClass::SloSensitive,
//!     request: SmRate::from_percent(30.0),
//!     limit: SmRate::from_percent(60.0),
//!     mem_bytes: dilu_gpu::GB,
//! })?;
//! gpu.push_work(
//!     id,
//!     WorkItem::compute(SimDuration::from_millis(10), SmRate::from_percent(50.0), 1_000, 7),
//! )?;
//! let mut policy = FairSharePolicy;
//! let mut now = SimTime::ZERO;
//! let mut done = Vec::new();
//! while done.is_empty() {
//!     let out = gpu.step(now, &mut policy);
//!     done.extend(out.completions);
//!     now += gpu.quantum();
//! }
//! assert_eq!(done[0].tag, 7);
//! # Ok(())
//! # }
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod curves;
mod engine;
mod error;
pub mod policies;
mod policy;
mod types;
mod work;

pub use curves::rate_factor;
pub use engine::{Completion, GpuEngine, SlotConfig, StepOutcome};
pub use error::GpuError;
pub use policy::{Grant, InstanceView, SharePolicy, IDLE_HISTORY_CYCLES};
pub use types::{InstanceId, SmRate, TaskClass, GB, MB};
pub use work::{WorkItem, WorkKind};

//! The share-policy abstraction: who gets how much SM each quantum.

use dilu_sim::{SimDuration, SimTime};

use crate::{InstanceId, SmRate, TaskClass};

/// Default idle-history bound, in token cycles (~0.5 s of the default
/// 5 ms quantum): how many fully-workless cycles a shipped policy needs
/// before its derived per-instance state provably reaches a fixed point
/// (kernel-rate windows filled with zeros, multiplicative grant ramps at
/// their ceilings). The event-driven driver replays exactly
/// [`SharePolicy::idle_history_cycles`] idle cycles — this value unless
/// the policy overrides — before stepping a GPU after a longer gap.
pub const IDLE_HISTORY_CYCLES: u64 = 96;

/// A read-only view of one resident instance, handed to policies each
/// quantum.
///
/// This mirrors what the paper's RCKM server learns from its interception
/// library clients: quotas, task type, pending kernel queues, recent launch
/// rates, and kernel-launch-cycle inflation.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct InstanceView {
    /// The instance this view describes.
    pub id: InstanceId,
    /// SLO-sensitive inference or best-effort training.
    pub class: TaskClass,
    /// Profiled minimum quota (the paper's `request`).
    pub request: SmRate,
    /// Profiled burst quota (the paper's `limit`).
    pub limit: SmRate,
    /// Current SM demand: the head item's saturation rate, or zero when the
    /// head is idle/absent.
    pub demand: SmRate,
    /// Items waiting in the slot queue (including the active one).
    pub queue_len: usize,
    /// Kernel blocks issued by this instance during the previous quantum.
    pub blocks_last_quantum: u64,
    /// Relative KLC inflation ΔT = (T_cur − T_min)/T_min of the most recent
    /// completed or in-flight compute item; `0.0` when uncontended.
    pub klc_inflation: f64,
    /// Quanta since this instance last issued a kernel block.
    ///
    /// Under an event-driven driver, long fully-idle gaps are replayed
    /// into the policy with a bounded number of cycles (see
    /// [`GpuEngine::idle_fastforward`](crate::GpuEngine::idle_fastforward)),
    /// so after such a gap this counter advances by at most the replay cap
    /// rather than the true gap length. Policies whose decisions hinge on
    /// idle spans longer than that cap should derive idleness from the
    /// `now` passed to [`SharePolicy::allocate`] instead.
    pub idle_quanta: u32,
}

/// An SM-rate grant for one instance for the coming quantum.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Grant {
    /// Grantee.
    pub id: InstanceId,
    /// Granted SM rate (will be clamped to demand and physical capacity by
    /// the engine).
    pub smr: SmRate,
}

/// Decides per-quantum SM grants for all instances resident on one GPU.
///
/// Implementations include Dilu's RCKM token manager (Algorithm 2), static
/// MPS partitions, TGS opportunistic sharing, and FaST-GS spatio-temporal
/// sharing. The trait is object-safe so engines can hold `Box<dyn
/// SharePolicy>`.
///
/// # Event-driven drivers and derived state
///
/// An event-driven driver skips token cycles in which no resident has
/// work and later replays a *bounded* number of idle cycles (capped at
/// this policy's own [`idle_history_cycles`](Self::idle_history_cycles)
/// bound; see
/// [`GpuEngine::idle_fastforward`](crate::GpuEngine::idle_fastforward))
/// before the next real step. Policies whose derived per-instance state
/// converges to a fixed point within that many workless cycles — windows
/// filling with zeros, multiplicative ramps reaching their ceilings, as
/// RCKM's do — behave identically under dense and event-driven stepping.
/// A custom policy whose state converges more slowly must override
/// [`idle_history_cycles`](Self::idle_history_cycles) with its true
/// bound; one whose behaviour depends on *unboundedly* long idle spans
/// (e.g. "release quota after 10 s idle" counted in cycles) should track
/// time via `now` in [`allocate`](Self::allocate), or be run under the
/// dense time model.
///
/// # `Send`
///
/// Policies are `Send`: the cluster's node plane may step the GPUs of
/// different nodes on different worker threads (`[sim] threads`). A policy
/// instance is only ever *used* by one thread at a time — it rides along
/// with its GPU when a node is handed to a worker — so no `Sync` bound is
/// needed, and interior state needs no locking.
pub trait SharePolicy: Send {
    /// Computes grants for the quantum starting at `now`.
    ///
    /// Instances absent from the returned vector receive a zero grant.
    /// Grants above an instance's demand are clamped by the engine; the sum
    /// of grants may oversubscribe the GPU, in which case the engine shares
    /// physical capacity proportionally to the clamped grants.
    fn allocate(
        &mut self,
        now: SimTime,
        quantum: SimDuration,
        views: &[InstanceView],
    ) -> Vec<Grant>;

    /// [`allocate`](Self::allocate) into a caller-owned buffer (cleared
    /// first) — the allocation-free form the engine uses on its step path,
    /// which runs once per GPU per token cycle and dominates simulator
    /// wall clock at cluster scale.
    ///
    /// The default delegates to `allocate` (one `Vec` per call), so
    /// third-party policies keep working unchanged; every shipped policy
    /// overrides it to write grants in place.
    fn allocate_into(
        &mut self,
        now: SimTime,
        quantum: SimDuration,
        views: &[InstanceView],
        out: &mut Vec<Grant>,
    ) {
        out.clear();
        out.extend(self.allocate(now, quantum, views));
    }

    /// Notifies the policy that an instance's `<request, limit>` quotas were
    /// resized by the elasticity control plane (vertical scaling).
    ///
    /// Quotas in [`InstanceView`]s already reflect the new values at the next
    /// [`allocate`](Self::allocate) call; this hook exists for policies that
    /// carry *derived* per-instance state (e.g. RCKM's last-issued grant) and
    /// must re-clamp it so the resize takes effect within one quantum rather
    /// than after the state decays. The default does nothing.
    fn notify_resize(&mut self, id: InstanceId, request: SmRate, limit: SmRate) {
        let _ = (id, request, limit);
    }

    /// A short human-readable policy name for reports.
    fn name(&self) -> &str;

    /// The number of fully-workless token cycles after which this
    /// policy's derived state is at a fixed point — replaying more idle
    /// cycles than this provably cannot change any subsequent grant.
    ///
    /// The event-driven driver uses this as its idle-replay cap: after a
    /// gap longer than the cap it replays exactly this many trailing
    /// idle cycles instead of the whole gap, and the bound is what makes
    /// that shortcut byte-identical to dense stepping. A policy whose
    /// state converges more slowly (longer rate windows, shallower
    /// ramps, explicit idle counters) must override this with its true
    /// bound — or track long idleness via `now` in
    /// [`allocate`](Self::allocate) as the module docs describe.
    ///
    /// The default, [`IDLE_HISTORY_CYCLES`], covers every shipped
    /// policy's windows and ramps with a wide margin.
    fn idle_history_cycles(&self) -> u64 {
        IDLE_HISTORY_CYCLES
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    struct GrantAll;

    impl SharePolicy for GrantAll {
        fn allocate(
            &mut self,
            _now: SimTime,
            _quantum: SimDuration,
            views: &[InstanceView],
        ) -> Vec<Grant> {
            views.iter().map(|v| Grant { id: v.id, smr: SmRate::FULL }).collect()
        }

        fn name(&self) -> &str {
            "grant-all"
        }
    }

    #[test]
    fn policies_are_object_safe() {
        let mut boxed: Box<dyn SharePolicy> = Box::new(GrantAll);
        let views = [InstanceView {
            id: InstanceId(1),
            class: TaskClass::SloSensitive,
            request: SmRate::from_percent(20.0),
            limit: SmRate::from_percent(40.0),
            demand: SmRate::from_percent(30.0),
            queue_len: 1,
            blocks_last_quantum: 10,
            klc_inflation: 0.0,
            idle_quanta: 0,
        }];
        let grants = boxed.allocate(SimTime::ZERO, SimDuration::from_millis(5), &views);
        assert_eq!(grants.len(), 1);
        assert_eq!(boxed.name(), "grant-all");
    }
}

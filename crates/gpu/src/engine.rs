//! The quantum-stepped GPU execution engine.

use std::collections::{BTreeMap, VecDeque};

use dilu_sim::{SimDuration, SimTime};

use crate::curves::rate_factor;
use crate::{GpuError, Grant, InstanceId, InstanceView, SharePolicy, SmRate, WorkItem, WorkKind};

/// Default scheduling quantum: the paper's 5 ms RCKM token period.
const DEFAULT_QUANTUM: SimDuration = SimDuration::from_millis(5);

/// Static configuration of a resident instance slot.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct SlotConfig {
    /// SLO-sensitive inference or best-effort training.
    pub class: crate::TaskClass,
    /// Profiled minimum SM quota.
    pub request: SmRate,
    /// Profiled burst SM quota.
    pub limit: SmRate,
    /// Device memory reserved for the lifetime of the instance.
    pub mem_bytes: u64,
}

/// A finished work item.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Completion {
    /// The instance whose item finished.
    pub instance: InstanceId,
    /// Caller correlation id from the [`WorkItem`].
    pub tag: u64,
    /// Completion instant (within the stepped quantum).
    pub at: SimTime,
    /// Wall time from the item becoming active to completion.
    pub elapsed: SimDuration,
    /// KLC inflation of the item: `elapsed / ideal − 1` (0 when ideal).
    pub klc_inflation: f64,
}

/// Per-quantum result of [`GpuEngine::step`].
///
/// Per-instance *consumed* SM rates are not materialised (only the sum):
/// the step path is the simulator's innermost loop and every avoidable
/// per-quantum allocation there is wall-clock at cluster scale. Callers
/// needing per-instance telemetry read [`GpuEngine::views`] between steps.
#[derive(Debug, Clone, Default)]
pub struct StepOutcome {
    /// Items that finished during the quantum, in completion order.
    pub completions: Vec<Completion>,
    /// Sum of consumed SM rate (≤ 1.0).
    pub total_used: SmRate,
    /// Kernel blocks issued per instance this quantum.
    pub blocks_issued: Vec<(InstanceId, u64)>,
}

#[derive(Debug, Clone)]
struct Active {
    item: WorkItem,
    progress: f64,
    blocks_issued: u64,
    elapsed: SimDuration,
}

#[derive(Debug, Clone)]
struct Slot {
    config: SlotConfig,
    queue: VecDeque<WorkItem>,
    active: Option<Active>,
    blocks_last_quantum: u64,
    blocks_total: u64,
    idle_quanta: u32,
    last_klc_inflation: f64,
}

impl Slot {
    fn head_demand(&self) -> SmRate {
        match &self.active {
            Some(a) => a.item.demand(),
            None => self.queue.front().map(WorkItem::demand).unwrap_or(SmRate::ZERO),
        }
    }

    fn queue_len(&self) -> usize {
        self.queue.len() + usize::from(self.active.is_some())
    }

    fn klc_inflation_estimate(&self) -> f64 {
        match &self.active {
            Some(a) if matches!(a.item.kind, WorkKind::Compute { .. }) => {
                let ideal = a.item.ideal_duration().as_secs_f64();
                if ideal <= 0.0 {
                    return self.last_klc_inflation;
                }
                let projected = if a.progress > 1e-9 {
                    a.elapsed.as_secs_f64() / a.progress
                } else {
                    // Starved item: elapsed alone already signals inflation.
                    a.elapsed.as_secs_f64() + ideal
                };
                ((projected / ideal) - 1.0).max(0.0)
            }
            _ => self.last_klc_inflation,
        }
    }
}

/// A simulated GPU: memory pool plus quantum-stepped SM contention engine.
///
/// See the [crate-level docs](crate) for the model and an end-to-end
/// example.
#[derive(Debug)]
pub struct GpuEngine {
    quantum: SimDuration,
    mem_capacity: u64,
    mem_used: u64,
    slots: BTreeMap<InstanceId, Slot>,
    blocks_total: u64,
    /// Reused per-step scratch for policy views (hot-loop allocation
    /// avoidance; cleared each step).
    view_buf: Vec<InstanceView>,
    /// Reused per-step scratch for resolved effective rates.
    eff_buf: Vec<(InstanceId, f64)>,
    /// Reused per-step scratch for policy grants.
    grant_buf: Vec<Grant>,
}

impl GpuEngine {
    /// Creates a GPU with the given device memory and the default 5 ms
    /// quantum.
    pub fn new(mem_capacity: u64) -> Self {
        Self::with_quantum(mem_capacity, DEFAULT_QUANTUM)
    }

    /// Creates a GPU with an explicit scheduling quantum.
    ///
    /// # Panics
    ///
    /// Panics if `quantum` is zero.
    pub fn with_quantum(mem_capacity: u64, quantum: SimDuration) -> Self {
        assert!(!quantum.is_zero(), "quantum must be positive");
        GpuEngine {
            quantum,
            mem_capacity,
            mem_used: 0,
            slots: BTreeMap::new(),
            blocks_total: 0,
            view_buf: Vec::new(),
            eff_buf: Vec::new(),
            grant_buf: Vec::new(),
        }
    }

    /// The scheduling quantum.
    pub fn quantum(&self) -> SimDuration {
        self.quantum
    }

    /// Total device memory in bytes.
    pub fn mem_capacity(&self) -> u64 {
        self.mem_capacity
    }

    /// Device memory currently reserved by resident instances.
    pub fn mem_used(&self) -> u64 {
        self.mem_used
    }

    /// Number of resident instances.
    pub fn resident_count(&self) -> usize {
        self.slots.len()
    }

    /// Resident instance ids in deterministic (ascending) order.
    pub fn instances(&self) -> impl Iterator<Item = InstanceId> + '_ {
        self.slots.keys().copied()
    }

    /// Total kernel blocks issued by all instances since creation.
    pub fn blocks_total(&self) -> u64 {
        self.blocks_total
    }

    /// Admits an instance, reserving its memory.
    ///
    /// # Errors
    ///
    /// Returns [`GpuError::DuplicateInstance`] if `id` is already resident
    /// and [`GpuError::OutOfMemory`] if the reservation does not fit.
    pub fn admit(&mut self, id: InstanceId, config: SlotConfig) -> Result<(), GpuError> {
        if self.slots.contains_key(&id) {
            return Err(GpuError::DuplicateInstance(id));
        }
        let available = self.mem_capacity - self.mem_used;
        if config.mem_bytes > available {
            return Err(GpuError::OutOfMemory { requested: config.mem_bytes, available });
        }
        self.mem_used += config.mem_bytes;
        self.slots.insert(
            id,
            Slot {
                config,
                queue: VecDeque::new(),
                active: None,
                blocks_last_quantum: 0,
                blocks_total: 0,
                idle_quanta: 0,
                last_klc_inflation: 0.0,
            },
        );
        Ok(())
    }

    /// Evicts an instance, releasing its memory and dropping queued work.
    ///
    /// # Errors
    ///
    /// Returns [`GpuError::UnknownInstance`] if `id` is not resident.
    pub fn evict(&mut self, id: InstanceId) -> Result<(), GpuError> {
        let slot = self.slots.remove(&id).ok_or(GpuError::UnknownInstance(id))?;
        self.mem_used -= slot.config.mem_bytes;
        Ok(())
    }

    /// Resizes an instance's `<request, limit>` SM quotas in place.
    ///
    /// The memory reservation and task class are untouched; the new quotas
    /// are visible to the [`SharePolicy`] at the very next [`step`](Self::step)
    /// (the paper's millisecond-scale vertical scaling — no eviction or
    /// re-admission). `request` is clamped to one whole GPU and `limit` is
    /// clamped up to at least `request`. The engine does not police
    /// cross-instance oversubscription — Σ requests above capacity is the
    /// controller's responsibility and resolves proportionally at step time.
    ///
    /// # Errors
    ///
    /// Returns [`GpuError::UnknownInstance`] if `id` is not resident.
    pub fn resize(
        &mut self,
        id: InstanceId,
        request: SmRate,
        limit: SmRate,
    ) -> Result<(), GpuError> {
        let slot = self.slots.get_mut(&id).ok_or(GpuError::UnknownInstance(id))?;
        let request = request.min(SmRate::FULL);
        slot.config.request = request;
        slot.config.limit = limit.max(request);
        Ok(())
    }

    /// Enqueues a work item on an instance.
    ///
    /// # Errors
    ///
    /// Returns [`GpuError::UnknownInstance`] if `id` is not resident.
    pub fn push_work(&mut self, id: InstanceId, item: WorkItem) -> Result<(), GpuError> {
        let slot = self.slots.get_mut(&id).ok_or(GpuError::UnknownInstance(id))?;
        slot.queue.push_back(item);
        Ok(())
    }

    /// Pending items (including the active one) for an instance.
    ///
    /// # Errors
    ///
    /// Returns [`GpuError::UnknownInstance`] if `id` is not resident.
    pub fn queue_len(&self, id: InstanceId) -> Result<usize, GpuError> {
        self.slots.get(&id).map(Slot::queue_len).ok_or(GpuError::UnknownInstance(id))
    }

    /// Kernel blocks issued by one instance since admission.
    ///
    /// # Errors
    ///
    /// Returns [`GpuError::UnknownInstance`] if `id` is not resident.
    pub fn instance_blocks_total(&self, id: InstanceId) -> Result<u64, GpuError> {
        self.slots.get(&id).map(|s| s.blocks_total).ok_or(GpuError::UnknownInstance(id))
    }

    /// `true` when no instance has pending work.
    pub fn is_idle(&self) -> bool {
        self.slots.values().all(|s| s.queue_len() == 0)
    }

    /// The next instant at which this GPU needs to be stepped, given the
    /// last step ran at `now`, or `None` when the engine is idle.
    ///
    /// Grants are renegotiated every token cycle, so while any slot has
    /// pending work the next interesting instant is the next quantum
    /// boundary; completions *inside* a quantum are already reported at
    /// their exact instants by [`step`](Self::step). An idle engine has no
    /// next event — a wake-on-work driver simply stops scheduling it and
    /// calls [`idle_fastforward`](Self::idle_fastforward) before the next
    /// real step.
    pub fn next_event_at(&self, now: SimTime) -> Option<SimTime> {
        if self.is_idle() {
            None
        } else {
            Some(now + self.quantum)
        }
    }

    /// Replays `cycles` workless token cycles starting at `from`, as if
    /// [`step`](Self::step) had been called that many times with every
    /// queue empty.
    ///
    /// An event-driven driver skips quanta in which no slot has work; this
    /// keeps the *policy* evolution identical to a dense per-quantum
    /// stepper across the gap: share policies carry derived state (RCKM's
    /// kernel-rate windows, last-grant ramps, idle counters) that dense
    /// stepping feeds with empty observations every cycle. Each replayed
    /// cycle zeroes per-cycle counters, presents the views, consults the
    /// policy (grants are discarded — nothing can run), and ages the idle
    /// counters, in exactly the dense order.
    ///
    /// Callers cap `cycles` (policy state reaches a fixed point once every
    /// per-slot window has filled with zeros), so a long gap costs a
    /// bounded replay rather than O(gap).
    ///
    /// No work progresses during the replay. Callers normally invoke this
    /// while the engine is idle; if items are already queued (a deployment
    /// landing right after an idle gap), the replayed views anachronistically
    /// show their head demand — a bounded approximation, since grants are
    /// discarded either way.
    pub fn idle_fastforward(&mut self, from: SimTime, cycles: u64, policy: &mut dyn SharePolicy) {
        let mut now = from;
        let mut views = std::mem::take(&mut self.view_buf);
        let mut grants = std::mem::take(&mut self.grant_buf);
        for _ in 0..cycles {
            self.views_into(&mut views);
            policy.allocate_into(now, self.quantum, &views, &mut grants);
            for slot in self.slots.values_mut() {
                slot.blocks_last_quantum = 0;
                slot.idle_quanta = slot.idle_quanta.saturating_add(1);
            }
            now += self.quantum;
        }
        self.view_buf = views;
        self.grant_buf = grants;
    }

    /// Builds policy views of all resident instances (ascending id order).
    pub fn views(&self) -> Vec<InstanceView> {
        let mut buf = Vec::with_capacity(self.slots.len());
        self.views_into(&mut buf);
        buf
    }

    /// [`views`](Self::views) into a caller-owned buffer (cleared first).
    fn views_into(&self, buf: &mut Vec<InstanceView>) {
        buf.clear();
        buf.extend(self.slots.iter().map(|(&id, slot)| InstanceView {
            id,
            class: slot.config.class,
            request: slot.config.request,
            limit: slot.config.limit,
            demand: slot.head_demand(),
            queue_len: slot.queue_len(),
            blocks_last_quantum: slot.blocks_last_quantum,
            klc_inflation: slot.klc_inflation_estimate(),
            idle_quanta: slot.idle_quanta,
        }));
    }

    /// Advances the GPU by one quantum starting at `now`.
    ///
    /// The policy is consulted once; grants are clamped to per-slot demand,
    /// then physical capacity (Σ ≤ 1.0) is shared proportionally among the
    /// clamped grants. Compute items progress according to
    /// [`rate_factor`]; idle items elapse in wall time.
    pub fn step(&mut self, now: SimTime, policy: &mut dyn SharePolicy) -> StepOutcome {
        let mut outcome = StepOutcome::default();
        self.step_into(now, policy, &mut outcome);
        outcome
    }

    /// [`step`](Self::step) into a caller-owned outcome (cleared first) —
    /// the allocation-free form for drivers stepping millions of quanta.
    pub fn step_into(
        &mut self,
        now: SimTime,
        policy: &mut dyn SharePolicy,
        outcome: &mut StepOutcome,
    ) {
        // Activate head items so demand reflects this quantum's work.
        for slot in self.slots.values_mut() {
            if slot.active.is_none() {
                if let Some(item) = slot.queue.pop_front() {
                    slot.active = Some(Active {
                        item,
                        progress: 0.0,
                        blocks_issued: 0,
                        elapsed: SimDuration::ZERO,
                    });
                }
            }
        }

        outcome.completions.clear();
        outcome.blocks_issued.clear();
        outcome.total_used = SmRate::ZERO;
        let mut views = std::mem::take(&mut self.view_buf);
        let mut grants = std::mem::take(&mut self.grant_buf);
        self.views_into(&mut views);
        policy.allocate_into(now, self.quantum, &views, &mut grants);
        let mut effective = std::mem::take(&mut self.eff_buf);
        self.resolve_grants(&grants, &mut effective);
        self.view_buf = views;
        self.grant_buf = grants;

        let quantum = self.quantum;
        for (&id, slot) in self.slots.iter_mut() {
            let eff = effective.iter().find(|(gid, _)| *gid == id).map(|&(_, e)| e).unwrap_or(0.0);
            let (used, blocks) =
                advance_slot(id, slot, now, quantum, eff, &mut outcome.completions);
            slot.blocks_last_quantum = blocks;
            slot.blocks_total += blocks;
            self.blocks_total += blocks;
            if blocks == 0 {
                slot.idle_quanta = slot.idle_quanta.saturating_add(1);
            } else {
                slot.idle_quanta = 0;
            }
            outcome.total_used += SmRate::from_fraction(used);
            if blocks > 0 {
                outcome.blocks_issued.push((id, blocks));
            }
        }
        self.eff_buf = effective;
    }

    /// Resolves physical contention over granted occupancy.
    ///
    /// A kernel stream *occupies* the SMs it is granted (MPS partitions
    /// spread kernels across the whole active-thread allotment even past
    /// the marginal-benefit knee), so contention is resolved over grants;
    /// the useful share is clamped to the item's saturation later.
    fn resolve_grants(&self, grants: &[Grant], effective: &mut Vec<(InstanceId, f64)>) {
        effective.clear();
        let mut total = 0.0;
        for (&id, slot) in self.slots.iter() {
            let granted = grants
                .iter()
                .find(|g| g.id == id)
                .map(|g| g.smr.as_fraction())
                .unwrap_or(0.0)
                .min(1.0);
            // Idle (or empty) slots occupy nothing regardless of grant.
            let eff = if slot.head_demand().is_zero() { 0.0 } else { granted };
            total += eff;
            effective.push((id, eff));
        }
        if total > 1.0 {
            let scale = 1.0 / total;
            for (_, eff) in effective.iter_mut() {
                *eff *= scale;
            }
        }
    }
}

/// Advances a single slot through one quantum at effective SM rate `eff`.
///
/// Returns `(sm_fraction_used, kernel_blocks_issued)`.
fn advance_slot(
    id: InstanceId,
    slot: &mut Slot,
    now: SimTime,
    quantum: SimDuration,
    eff: f64,
    completions: &mut Vec<Completion>,
) -> (f64, u64) {
    let mut budget = quantum;
    let mut sm_time_used = SimDuration::ZERO;
    let mut blocks_issued: u64 = 0;

    while !budget.is_zero() {
        let Some(active) = slot.active.as_mut() else {
            match slot.queue.pop_front() {
                Some(item) => {
                    slot.active = Some(Active {
                        item,
                        progress: 0.0,
                        blocks_issued: 0,
                        elapsed: SimDuration::ZERO,
                    });
                    continue;
                }
                None => break,
            }
        };

        match active.item.kind {
            WorkKind::Idle { duration } => {
                let remaining = duration.mul_f64(1.0 - active.progress);
                if remaining <= budget {
                    budget -= remaining;
                    let elapsed = active.elapsed + remaining;
                    completions.push(Completion {
                        instance: id,
                        tag: active.item.tag,
                        at: now + (quantum - budget),
                        elapsed,
                        klc_inflation: 0.0,
                    });
                    slot.active = None;
                } else {
                    let frac = budget.ratio(duration);
                    active.progress += frac;
                    active.elapsed += budget;
                    budget = SimDuration::ZERO;
                }
            }
            WorkKind::Compute { t_min, sat, kernel_blocks } => {
                // Only the sub-saturation share does useful work; occupancy
                // beyond `sat` is stranded (the marginal effect).
                let useful = eff.min(sat.as_fraction());
                let rate = rate_factor(useful, sat.as_fraction());
                if rate <= 0.0 {
                    // Starved: wall time still elapses against the KLC.
                    active.elapsed += budget;
                    break;
                }
                let t_min_s = t_min.as_secs_f64();
                let full_progress = budget.as_secs_f64() * rate / t_min_s;
                if active.progress + full_progress >= 1.0 {
                    let needed = (1.0 - active.progress) * t_min_s / rate;
                    let dt = SimDuration::from_secs_f64(needed);
                    budget = budget.saturating_since_duration(dt);
                    sm_time_used += dt.mul_f64(useful);
                    let remaining_blocks = kernel_blocks.saturating_sub(active.blocks_issued);
                    blocks_issued += remaining_blocks;
                    let elapsed = active.elapsed + dt;
                    let inflation = if t_min_s > 0.0 {
                        (elapsed.as_secs_f64() / t_min_s - 1.0).max(0.0)
                    } else {
                        0.0
                    };
                    slot.last_klc_inflation = inflation;
                    completions.push(Completion {
                        instance: id,
                        tag: active.item.tag,
                        at: now + (quantum - budget),
                        elapsed,
                        klc_inflation: inflation,
                    });
                    slot.active = None;
                } else {
                    active.progress += full_progress;
                    active.elapsed += budget;
                    let target_blocks = (kernel_blocks as f64 * active.progress) as u64;
                    let newly = target_blocks.saturating_sub(active.blocks_issued);
                    active.blocks_issued += newly;
                    blocks_issued += newly;
                    sm_time_used += budget.mul_f64(useful);
                    budget = SimDuration::ZERO;
                }
            }
        }
    }

    (sm_time_used.ratio(quantum), blocks_issued)
}

/// Extension: saturating subtraction helper used by the inner loop.
trait SaturatingSinceDuration {
    fn saturating_since_duration(self, other: SimDuration) -> SimDuration;
}

impl SaturatingSinceDuration for SimDuration {
    fn saturating_since_duration(self, other: SimDuration) -> SimDuration {
        if other >= self {
            SimDuration::ZERO
        } else {
            self - other
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::policies::{FairSharePolicy, StaticPartitionPolicy};
    use crate::TaskClass;
    use crate::GB;

    fn slot(class: TaskClass, request: f64, limit: f64) -> SlotConfig {
        SlotConfig {
            class,
            request: SmRate::from_percent(request),
            limit: SmRate::from_percent(limit),
            mem_bytes: GB,
        }
    }

    fn run_until_idle(gpu: &mut GpuEngine, policy: &mut dyn SharePolicy) -> Vec<Completion> {
        let mut now = SimTime::ZERO;
        let mut done = Vec::new();
        for _ in 0..100_000 {
            if gpu.is_idle() {
                break;
            }
            let out = gpu.step(now, policy);
            done.extend(out.completions);
            now += gpu.quantum();
        }
        assert!(gpu.is_idle(), "engine failed to drain");
        done
    }

    #[test]
    fn admission_respects_memory() {
        let mut gpu = GpuEngine::new(2 * GB);
        gpu.admit(InstanceId(1), slot(TaskClass::SloSensitive, 30.0, 60.0)).unwrap();
        gpu.admit(InstanceId(2), slot(TaskClass::SloSensitive, 30.0, 60.0)).unwrap();
        let err = gpu.admit(InstanceId(3), slot(TaskClass::SloSensitive, 30.0, 60.0)).unwrap_err();
        assert!(matches!(err, GpuError::OutOfMemory { .. }));
        gpu.evict(InstanceId(1)).unwrap();
        gpu.admit(InstanceId(3), slot(TaskClass::SloSensitive, 30.0, 60.0)).unwrap();
        assert_eq!(gpu.mem_used(), 2 * GB);
    }

    #[test]
    fn duplicate_and_unknown_instances_error() {
        let mut gpu = GpuEngine::new(GB * 4);
        gpu.admit(InstanceId(1), slot(TaskClass::BestEffort, 50.0, 100.0)).unwrap();
        assert!(matches!(
            gpu.admit(InstanceId(1), slot(TaskClass::BestEffort, 50.0, 100.0)),
            Err(GpuError::DuplicateInstance(_))
        ));
        assert!(matches!(gpu.evict(InstanceId(9)), Err(GpuError::UnknownInstance(_))));
        assert!(matches!(
            gpu.push_work(InstanceId(9), WorkItem::idle(SimDuration::from_millis(1), 0)),
            Err(GpuError::UnknownInstance(_))
        ));
    }

    #[test]
    fn solo_compute_finishes_in_ideal_time() {
        let mut gpu = GpuEngine::new(GB * 4);
        let id = InstanceId(1);
        gpu.admit(id, slot(TaskClass::SloSensitive, 40.0, 80.0)).unwrap();
        gpu.push_work(
            id,
            WorkItem::compute(SimDuration::from_millis(25), SmRate::from_percent(40.0), 1_000, 1),
        )
        .unwrap();
        let done = run_until_idle(&mut gpu, &mut FairSharePolicy);
        assert_eq!(done.len(), 1);
        assert_eq!(done[0].elapsed, SimDuration::from_millis(25));
        assert!(done[0].klc_inflation.abs() < 1e-9);
    }

    #[test]
    fn contention_inflates_klc_proportionally() {
        // Two instances both saturating at 80%: physical sharing halves each.
        let mut gpu = GpuEngine::new(GB * 4);
        for i in 1..=2 {
            gpu.admit(InstanceId(i), slot(TaskClass::BestEffort, 50.0, 100.0)).unwrap();
            gpu.push_work(
                InstanceId(i),
                WorkItem::compute(SimDuration::from_millis(40), SmRate::from_percent(80.0), 800, i),
            )
            .unwrap();
        }
        let done = run_until_idle(&mut gpu, &mut FairSharePolicy);
        assert_eq!(done.len(), 2);
        for c in &done {
            // Each got 50% of an 80%-sat stream: x = 0.625 → rate 0.69 →
            // ~45% KLC inflation.
            assert!(c.klc_inflation > 0.4, "inflation {}", c.klc_inflation);
        }
    }

    #[test]
    fn static_partition_strands_unused_sm() {
        // One busy instance capped at 30% while 70% of the GPU sits idle.
        let mut gpu = GpuEngine::new(GB * 4);
        let id = InstanceId(1);
        gpu.admit(id, slot(TaskClass::SloSensitive, 30.0, 30.0)).unwrap();
        gpu.push_work(
            id,
            WorkItem::compute(SimDuration::from_millis(30), SmRate::from_percent(60.0), 600, 1),
        )
        .unwrap();
        let mut mps = StaticPartitionPolicy::new([(id, SmRate::from_percent(30.0))]);
        let done = run_until_idle(&mut gpu, &mut mps);
        // 30/60 → x = 0.5 → rate 0.5^0.8 = 0.574 → ~52.2 ms.
        let got = done[0].elapsed.as_millis_f64();
        assert!((got - 52.2).abs() < 1.5, "elapsed {got}ms");
    }

    #[test]
    fn idle_phases_elapse_without_sm() {
        let mut gpu = GpuEngine::new(GB * 4);
        let id = InstanceId(1);
        gpu.admit(id, slot(TaskClass::BestEffort, 50.0, 100.0)).unwrap();
        gpu.push_work(id, WorkItem::idle(SimDuration::from_millis(12), 7)).unwrap();
        let mut now = SimTime::ZERO;
        let mut used_any = false;
        let mut done = Vec::new();
        while !gpu.is_idle() {
            let out = gpu.step(now, &mut FairSharePolicy);
            used_any |= out.total_used.as_fraction() > 1e-12;
            done.extend(out.completions);
            now += gpu.quantum();
        }
        assert!(!used_any, "idle phases must not consume SM");
        assert_eq!(done[0].elapsed, SimDuration::from_millis(12));
    }

    #[test]
    fn idle_and_compute_chain_within_quantum() {
        let mut gpu = GpuEngine::new(GB * 4);
        let id = InstanceId(1);
        gpu.admit(id, slot(TaskClass::BestEffort, 50.0, 100.0)).unwrap();
        gpu.push_work(id, WorkItem::idle(SimDuration::from_millis(2), 1)).unwrap();
        gpu.push_work(
            id,
            WorkItem::compute(SimDuration::from_millis(2), SmRate::from_percent(50.0), 100, 2),
        )
        .unwrap();
        let done = run_until_idle(&mut gpu, &mut FairSharePolicy);
        assert_eq!(done.len(), 2);
        // The idle phase finishes inside the first quantum; the compute phase
        // picks up its grant at the next 5 ms cycle (RCKM period) and ends by
        // the second quantum.
        assert!(done[0].at <= SimTime::from_millis(5));
        assert!(done[1].at <= SimTime::from_millis(10));
    }

    #[test]
    fn physical_capacity_is_conserved() {
        let mut gpu = GpuEngine::new(GB * 8);
        for i in 1..=4 {
            gpu.admit(InstanceId(i), slot(TaskClass::BestEffort, 50.0, 100.0)).unwrap();
            gpu.push_work(
                InstanceId(i),
                WorkItem::compute(
                    SimDuration::from_millis(100),
                    SmRate::from_percent(90.0),
                    1_000,
                    i,
                ),
            )
            .unwrap();
        }
        let out = gpu.step(SimTime::ZERO, &mut FairSharePolicy);
        assert!(out.total_used.as_fraction() <= 1.0 + 1e-9);
        assert!(out.total_used.as_fraction() > 0.95, "work-conserving under load");
    }

    #[test]
    fn kernel_blocks_are_fully_issued() {
        let mut gpu = GpuEngine::new(GB * 4);
        let id = InstanceId(1);
        gpu.admit(id, slot(TaskClass::SloSensitive, 40.0, 80.0)).unwrap();
        for tag in 0..5 {
            gpu.push_work(
                id,
                WorkItem::compute(
                    SimDuration::from_millis(13),
                    SmRate::from_percent(40.0),
                    333,
                    tag,
                ),
            )
            .unwrap();
        }
        run_until_idle(&mut gpu, &mut FairSharePolicy);
        assert_eq!(gpu.blocks_total(), 5 * 333);
        assert_eq!(gpu.instance_blocks_total(id).unwrap(), 5 * 333);
    }

    #[test]
    fn resize_applies_within_one_quantum() {
        // A 30%-capped instance running a 60%-sat stream speeds up the very
        // next quantum after its quota is resized to saturation.
        let mut gpu = GpuEngine::new(GB * 4);
        let id = InstanceId(1);
        gpu.admit(id, slot(TaskClass::SloSensitive, 30.0, 30.0)).unwrap();
        gpu.push_work(
            id,
            WorkItem::compute(SimDuration::from_millis(40), SmRate::from_percent(60.0), 400, 1),
        )
        .unwrap();
        let mut policy = StaticPartitionPolicy::new([(id, SmRate::from_percent(30.0))]);
        gpu.step(SimTime::ZERO, &mut policy);
        gpu.resize(id, SmRate::from_percent(60.0), SmRate::from_percent(60.0)).unwrap();
        assert_eq!(gpu.views()[0].request, SmRate::from_percent(60.0));
        let mut full = StaticPartitionPolicy::new([(id, SmRate::from_percent(60.0))]);
        let mut now = SimTime::ZERO + gpu.quantum();
        let mut done = Vec::new();
        while done.is_empty() {
            done.extend(gpu.step(now, &mut full).completions);
            now += gpu.quantum();
        }
        // One quantum at 30/60 (rate 0.574) then saturated: well under the
        // ~70 ms a permanently capped run would take.
        assert!(done[0].elapsed < SimDuration::from_millis(50), "elapsed {}", done[0].elapsed);
    }

    #[test]
    fn resize_clamps_and_rejects_unknown_instances() {
        let mut gpu = GpuEngine::new(GB * 4);
        let id = InstanceId(1);
        gpu.admit(id, slot(TaskClass::SloSensitive, 40.0, 80.0)).unwrap();
        // limit below request is clamped up; request above a whole card is
        // clamped down.
        gpu.resize(id, SmRate::from_percent(150.0), SmRate::from_percent(10.0)).unwrap();
        let v = gpu.views()[0];
        assert_eq!(v.request, SmRate::FULL);
        assert_eq!(v.limit, SmRate::FULL);
        assert!(matches!(
            gpu.resize(InstanceId(9), SmRate::ZERO, SmRate::ZERO),
            Err(GpuError::UnknownInstance(_))
        ));
    }

    #[test]
    fn next_event_at_is_the_quantum_boundary_while_busy() {
        let mut gpu = GpuEngine::new(GB * 4);
        let id = InstanceId(1);
        gpu.admit(id, slot(TaskClass::SloSensitive, 40.0, 80.0)).unwrap();
        assert_eq!(gpu.next_event_at(SimTime::ZERO), None, "resident but workless GPU is idle");
        gpu.push_work(
            id,
            WorkItem::compute(SimDuration::from_millis(12), SmRate::from_percent(40.0), 100, 1),
        )
        .unwrap();
        let now = SimTime::from_millis(15);
        assert_eq!(gpu.next_event_at(now), Some(now + gpu.quantum()));
        let mut policy = FairSharePolicy;
        run_until_idle(&mut gpu, &mut policy);
        assert_eq!(gpu.next_event_at(SimTime::ZERO), None, "drained GPU needs no wake");
    }

    /// Records every view sequence the policy is shown, so the fast-forward
    /// path can be compared observation-for-observation against dense
    /// idle stepping.
    struct Recorder {
        seen: Vec<Vec<InstanceView>>,
    }

    impl SharePolicy for Recorder {
        fn allocate(
            &mut self,
            _now: SimTime,
            _quantum: SimDuration,
            views: &[InstanceView],
        ) -> Vec<Grant> {
            self.seen.push(views.to_vec());
            Vec::new()
        }

        fn name(&self) -> &str {
            "recorder"
        }
    }

    #[test]
    fn idle_fastforward_matches_dense_idle_stepping() {
        // Two engines with the same resident (workless) slot: one stepped
        // densely through 7 empty quanta, one fast-forwarded over them. The
        // policies must observe identical view sequences and the slots must
        // end in identical state.
        let build = || {
            let mut gpu = GpuEngine::new(GB * 4);
            gpu.admit(InstanceId(1), slot(TaskClass::SloSensitive, 40.0, 80.0)).unwrap();
            gpu.admit(InstanceId(2), slot(TaskClass::BestEffort, 30.0, 60.0)).unwrap();
            gpu
        };
        let (mut dense, mut fast) = (build(), build());
        let mut dense_policy = Recorder { seen: Vec::new() };
        let mut fast_policy = Recorder { seen: Vec::new() };
        let mut now = SimTime::ZERO;
        for _ in 0..7 {
            dense.step(now, &mut dense_policy);
            now += dense.quantum();
        }
        fast.idle_fastforward(SimTime::ZERO, 7, &mut fast_policy);
        assert_eq!(dense_policy.seen, fast_policy.seen);
        assert_eq!(dense.views(), fast.views());
    }

    #[test]
    fn views_reflect_queue_state() {
        let mut gpu = GpuEngine::new(GB * 4);
        let id = InstanceId(1);
        gpu.admit(id, slot(TaskClass::SloSensitive, 40.0, 80.0)).unwrap();
        assert_eq!(gpu.views()[0].queue_len, 0);
        assert_eq!(gpu.views()[0].demand, SmRate::ZERO);
        gpu.push_work(
            id,
            WorkItem::compute(SimDuration::from_millis(10), SmRate::from_percent(35.0), 10, 0),
        )
        .unwrap();
        let v = gpu.views();
        assert_eq!(v[0].queue_len, 1);
        assert_eq!(v[0].demand, SmRate::from_percent(35.0));
    }

    #[test]
    fn starved_instance_reports_klc_inflation() {
        let mut gpu = GpuEngine::new(GB * 4);
        let id = InstanceId(1);
        gpu.admit(id, slot(TaskClass::SloSensitive, 40.0, 80.0)).unwrap();
        gpu.push_work(
            id,
            WorkItem::compute(SimDuration::from_millis(10), SmRate::from_percent(40.0), 10, 0),
        )
        .unwrap();
        let mut zero = StaticPartitionPolicy::new([(id, SmRate::ZERO)]);
        let mut now = SimTime::ZERO;
        for _ in 0..4 {
            gpu.step(now, &mut zero);
            now += gpu.quantum();
        }
        assert!(gpu.views()[0].klc_inflation > 0.5);
        assert!(gpu.views()[0].idle_quanta >= 4);
    }
}

//! GPU-sharing baseline policies.

use std::collections::BTreeMap;

use dilu_gpu::{Grant, InstanceId, InstanceView, SharePolicy, SmRate};
use dilu_sim::{SimDuration, SimTime};
use serde::{Deserialize, Serialize};

/// Which profiled quota an MPS partition pins each instance to.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum QuotaSource {
    /// The paper's *MPS-r*: static partitions at the `request` quota.
    Request,
    /// The paper's *MPS-l*: static partitions at the `limit` quota.
    Limit,
}

/// NVIDIA-MPS-style static spatial partitioning.
///
/// Each instance is permanently capped at its profiled quota; idle
/// partitions strand their SM share (the Table 1 "static" column).
///
/// # Examples
///
/// ```
/// use dilu_baselines::{MpsPolicy, QuotaSource};
/// use dilu_gpu::SharePolicy;
///
/// assert_eq!(MpsPolicy::new(QuotaSource::Limit).name(), "mps-l");
/// assert_eq!(MpsPolicy::new(QuotaSource::Request).name(), "mps-r");
/// ```
#[derive(Debug, Clone, Copy)]
pub struct MpsPolicy {
    source: QuotaSource,
}

impl MpsPolicy {
    /// Creates an MPS partition pinned at the given quota source.
    pub fn new(source: QuotaSource) -> Self {
        MpsPolicy { source }
    }
}

impl SharePolicy for MpsPolicy {
    fn allocate(
        &mut self,
        now: SimTime,
        quantum: SimDuration,
        views: &[InstanceView],
    ) -> Vec<Grant> {
        let mut out = Vec::new();
        self.allocate_into(now, quantum, views, &mut out);
        out
    }

    fn allocate_into(
        &mut self,
        _now: SimTime,
        _quantum: SimDuration,
        views: &[InstanceView],
        out: &mut Vec<Grant>,
    ) {
        out.clear();
        out.extend(views.iter().map(|v| Grant {
            id: v.id,
            smr: match self.source {
                QuotaSource::Request => v.request,
                QuotaSource::Limit => v.limit,
            },
        }));
    }

    fn name(&self) -> &str {
        match self.source {
            QuotaSource::Request => "mps-r",
            QuotaSource::Limit => "mps-l",
        }
    }
}

/// TGS-style transparent sharing (Wu et al., NSDI '23).
///
/// Productive (SLO-sensitive) jobs run unthrottled. Opportunistic
/// (best-effort) jobs receive a tiny probe rate that grows multiplicatively
/// only while the productive job has been idle over a trial window, and
/// collapses the moment it becomes active — the paper's explanation for
/// TGS "nearly stopping" collocated training and for its extreme
/// inference-inference latencies (the second inference instance is
/// opportunistic). The productive job is the first-admitted SLO-sensitive
/// resident, or the first-admitted instance when none is.
#[derive(Debug, Clone)]
pub struct TgsPolicy {
    /// Initial/collapsed opportunistic rate.
    floor: f64,
    /// Multiplicative growth per quantum while the productive side idles.
    growth: f64,
    rates: BTreeMap<InstanceId, f64>,
}

impl TgsPolicy {
    /// Creates a TGS policy with the default probe parameters.
    pub fn new() -> Self {
        TgsPolicy { floor: 0.02, growth: 1.05, rates: BTreeMap::new() }
    }
}

impl Default for TgsPolicy {
    fn default() -> Self {
        Self::new()
    }
}

impl SharePolicy for TgsPolicy {
    fn allocate(
        &mut self,
        now: SimTime,
        quantum: SimDuration,
        views: &[InstanceView],
    ) -> Vec<Grant> {
        let mut out = Vec::new();
        self.allocate_into(now, quantum, views, &mut out);
        out
    }

    fn allocate_into(
        &mut self,
        _now: SimTime,
        _quantum: SimDuration,
        views: &[InstanceView],
        out: &mut Vec<Grant>,
    ) {
        self.rates.retain(|id, _| views.iter().any(|v| v.id == *id));
        // TGS knows one productive job per GPU; everything else is
        // opportunistic. With an SLO-sensitive resident that job is the
        // productive one, otherwise the first-admitted instance is.
        let productive_id = views
            .iter()
            .filter(|v| v.class.is_slo_sensitive())
            .map(|v| v.id)
            .min()
            .or_else(|| views.iter().map(|v| v.id).min());
        let productive = |v: &InstanceView| productive_id == Some(v.id);
        // "Recently active" = launched kernels within the last few quanta.
        let productive_active = views.iter().any(|v| productive(v) && v.idle_quanta < 4);
        out.clear();
        out.extend(views.iter().map(|v| {
            if productive(v) {
                Grant { id: v.id, smr: SmRate::FULL }
            } else {
                let rate = self.rates.entry(v.id).or_insert(self.floor);
                if productive_active {
                    *rate = self.floor;
                } else {
                    *rate = (*rate * self.growth).min(1.0);
                }
                Grant { id: v.id, smr: SmRate::from_fraction(*rate) }
            }
        }));
    }

    fn name(&self) -> &str {
        "tgs"
    }
}

/// FaST-GShare-style spatio-temporal sharing (ICPP '23).
///
/// Spatially each instance owns its MPS `limit` partition; temporally, idle
/// partitions are lent to active instances. The CUDA-event time accounting
/// and prioritized dequeuing cost a fixed efficiency tax on every grant —
/// the overhead the paper measures against MPS-l, negligible only for small
/// (low-saturation) models.
#[derive(Debug, Clone)]
pub struct FastGsPolicy {
    /// Fractional overhead on large-model grants.
    overhead: f64,
}

impl FastGsPolicy {
    /// Creates a FaST-GS policy with the paper-calibrated overhead.
    pub fn new() -> Self {
        FastGsPolicy { overhead: 0.08 }
    }
}

impl Default for FastGsPolicy {
    fn default() -> Self {
        Self::new()
    }
}

impl SharePolicy for FastGsPolicy {
    fn allocate(
        &mut self,
        now: SimTime,
        quantum: SimDuration,
        views: &[InstanceView],
    ) -> Vec<Grant> {
        let mut out = Vec::new();
        self.allocate_into(now, quantum, views, &mut out);
        out
    }

    fn allocate_into(
        &mut self,
        _now: SimTime,
        _quantum: SimDuration,
        views: &[InstanceView],
        out: &mut Vec<Grant>,
    ) {
        let idle_pool: f64 =
            views.iter().filter(|v| v.idle_quanta >= 4).map(|v| v.limit.as_fraction()).sum();
        let active = views.iter().filter(|v| v.idle_quanta < 4).count();
        let share = if active == 0 { 0.0 } else { idle_pool / active as f64 };
        out.clear();
        out.extend(views.iter().map(|v| {
            let base = if v.idle_quanta < 4 {
                v.limit.as_fraction() + share
            } else {
                v.limit.as_fraction()
            };
            // Event-statistics overhead bites models that need many SMs;
            // small kernels slip through the prioritized queue unharmed.
            let tax = if v.demand.as_fraction() >= 0.35 { self.overhead } else { 0.01 };
            Grant { id: v.id, smr: SmRate::from_fraction((base * (1.0 - tax)).max(0.0)) }
        }));
    }

    fn name(&self) -> &str {
        "fast-gs"
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use dilu_gpu::TaskClass;

    fn view(id: u64, class: TaskClass, request: f64, limit: f64, idle_quanta: u32) -> InstanceView {
        InstanceView {
            id: InstanceId(id),
            class,
            request: SmRate::from_percent(request),
            limit: SmRate::from_percent(limit),
            demand: SmRate::from_percent(50.0),
            queue_len: 1,
            blocks_last_quantum: if idle_quanta == 0 { 10 } else { 0 },
            klc_inflation: 0.0,
            idle_quanta,
        }
    }

    fn tick(p: &mut dyn SharePolicy, views: &[InstanceView]) -> Vec<Grant> {
        p.allocate(SimTime::ZERO, SimDuration::from_millis(5), views)
    }

    fn grant_of(grants: &[Grant], id: u64) -> f64 {
        grants.iter().find(|g| g.id == InstanceId(id)).unwrap().smr.as_fraction()
    }

    #[test]
    fn mps_grants_are_static_even_when_idle() {
        let views = [
            view(1, TaskClass::SloSensitive, 30.0, 60.0, 100),
            view(2, TaskClass::BestEffort, 40.0, 80.0, 0),
        ];
        let mut l = MpsPolicy::new(QuotaSource::Limit);
        let g = tick(&mut l, &views);
        assert_eq!(grant_of(&g, 1), 0.60);
        assert_eq!(grant_of(&g, 2), 0.80);
        let mut r = MpsPolicy::new(QuotaSource::Request);
        let g = tick(&mut r, &views);
        assert_eq!(grant_of(&g, 1), 0.30);
        assert_eq!(grant_of(&g, 2), 0.40);
    }

    #[test]
    fn tgs_starves_opportunistic_while_productive_is_active() {
        let mut p = TgsPolicy::new();
        let views = [
            view(1, TaskClass::SloSensitive, 30.0, 60.0, 0),
            view(2, TaskClass::BestEffort, 40.0, 80.0, 0),
        ];
        for _ in 0..20 {
            let g = tick(&mut p, &views);
            assert_eq!(grant_of(&g, 1), 1.0);
            assert!(grant_of(&g, 2) <= 0.02 + 1e-9, "opportunistic must stay collapsed");
        }
    }

    #[test]
    fn tgs_grows_opportunistic_when_productive_idles() {
        let mut p = TgsPolicy::new();
        let views = [
            view(1, TaskClass::SloSensitive, 30.0, 60.0, 100),
            view(2, TaskClass::BestEffort, 40.0, 80.0, 0),
        ];
        let mut last = 0.0;
        for _ in 0..60 {
            let g = tick(&mut p, &views);
            let now = grant_of(&g, 2);
            assert!(now >= last, "opportunistic rate must grow");
            last = now;
        }
        assert!(last > 0.3, "after idling the trial rate climbs, got {last}");
        // Productive wakes up: collapse.
        let awake = [
            view(1, TaskClass::SloSensitive, 30.0, 60.0, 0),
            view(2, TaskClass::BestEffort, 40.0, 80.0, 0),
        ];
        let g = tick(&mut p, &awake);
        assert!(grant_of(&g, 2) <= 0.02 + 1e-9);
    }

    #[test]
    fn tgs_picks_a_productive_job_among_best_effort_pairs() {
        let mut p = TgsPolicy::new();
        let views = [
            view(1, TaskClass::BestEffort, 30.0, 60.0, 0),
            view(2, TaskClass::BestEffort, 40.0, 80.0, 0),
        ];
        let g = tick(&mut p, &views);
        assert_eq!(grant_of(&g, 1), 1.0, "lowest id is productive");
        assert!(grant_of(&g, 2) < 0.1);
    }

    #[test]
    fn fast_gs_lends_idle_partitions_with_overhead() {
        let mut p = FastGsPolicy::new();
        let views = [
            view(1, TaskClass::SloSensitive, 30.0, 60.0, 0),
            view(2, TaskClass::BestEffort, 40.0, 80.0, 10),
        ];
        let g = tick(&mut p, &views);
        // Active instance gets its 0.6 plus the idle 0.8, taxed 8%.
        assert!((grant_of(&g, 1) - (0.6 + 0.8) * 0.92).abs() < 1e-9);
    }

    #[test]
    fn fast_gs_overhead_spares_small_models() {
        let mut p = FastGsPolicy::new();
        let mut small = view(1, TaskClass::SloSensitive, 30.0, 60.0, 0);
        small.demand = SmRate::from_percent(20.0);
        let g = tick(&mut p, &[small]);
        assert!((grant_of(&g, 1) - 0.6 * 0.99).abs() < 1e-9);
    }
}

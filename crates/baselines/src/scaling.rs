//! Baseline horizontal autoscalers: eager (FaST-GS+) and keep-alive
//! (INFless+).

use std::collections::BTreeMap;

use dilu_cluster::{Autoscaler, FunctionId, FunctionScaleView, ScaleAction};
use dilu_sim::{SimDuration, SimTime};

/// FaST-GS+-style eager reactive scaling.
///
/// Scales out the moment the most recent second exceeds deployed capacity
/// and scales in after a short quiet spell. Burst-chasing keeps GPU usage
/// low but pays a cold start for every spike — the paper's Table 3 shows it
/// with the most cold starts and the worst SLO violation rate.
#[derive(Debug, Clone)]
pub struct ReactiveScaler {
    /// Seconds below reduced capacity before scaling in.
    quiet_secs: usize,
    quiet: BTreeMap<FunctionId, usize>,
}

impl ReactiveScaler {
    /// Creates an eager scaler with the default 10 s scale-in quiet period.
    pub fn new() -> Self {
        ReactiveScaler { quiet_secs: 10, quiet: BTreeMap::new() }
    }
}

impl Default for ReactiveScaler {
    fn default() -> Self {
        Self::new()
    }
}

impl Autoscaler for ReactiveScaler {
    fn on_tick(&mut self, _now: SimTime, functions: &[FunctionScaleView]) -> Vec<ScaleAction> {
        let mut actions = Vec::new();
        for f in functions {
            if !f.kind.is_inference() {
                continue;
            }
            let deployed = f.ready_instances + f.starting_instances;
            let last = f.rps_window.last().copied().unwrap_or(0) as f64;
            let capacity = f.capacity_rps * f64::from(deployed);
            if deployed == 0 {
                if f.backlog > 0 || last > 0.0 {
                    actions.push(ScaleAction::ScaleOut { func: f.func, count: 1 });
                }
                continue;
            }
            if last > capacity {
                let count = ((last - capacity) / f.capacity_rps.max(1e-9)).ceil().max(1.0) as u32;
                actions.push(ScaleAction::ScaleOut { func: f.func, count });
                self.quiet.insert(f.func, 0);
                continue;
            }
            let reduced = f.capacity_rps * f64::from(f.ready_instances.saturating_sub(1));
            let quiet = self.quiet.entry(f.func).or_insert(0);
            if f.ready_instances > 0 && last < reduced.max(1.0) {
                *quiet += 1;
                if *quiet >= self.quiet_secs {
                    *quiet = 0;
                    actions.push(ScaleAction::ScaleIn { func: f.func, count: 1 });
                }
            } else {
                *quiet = 0;
            }
        }
        actions
    }

    fn name(&self) -> &str {
        "fast-gs+-reactive"
    }
}

/// INFless+-style prediction and keep-alive scaling (after the Azure
/// Serverless histogram policy the paper cites).
///
/// Scales out on a short moving average (prior knowledge smooths bursts) and
/// keeps idle instances alive for a long window before scaling in — fewer
/// cold starts than eager scaling, at the price of idle GPU time (the SGT
/// column of Table 3).
#[derive(Debug, Clone)]
pub struct KeepAliveScaler {
    /// Keep-alive duration before an idle instance may be reclaimed.
    keep_alive: SimDuration,
    /// Moving-average length for the scale-out decision, in seconds.
    horizon: usize,
}

impl KeepAliveScaler {
    /// Creates a keep-alive scaler with the given idle retention.
    pub fn new(keep_alive: SimDuration) -> Self {
        KeepAliveScaler { keep_alive, horizon: 5 }
    }
}

impl Default for KeepAliveScaler {
    fn default() -> Self {
        // Observation-3: keep-alive lifecycles are ~50 s in production.
        Self::new(SimDuration::from_secs(50))
    }
}

impl Autoscaler for KeepAliveScaler {
    fn on_tick(&mut self, _now: SimTime, functions: &[FunctionScaleView]) -> Vec<ScaleAction> {
        let mut actions = Vec::new();
        for f in functions {
            if !f.kind.is_inference() {
                continue;
            }
            let deployed = f.ready_instances + f.starting_instances;
            if deployed == 0 {
                if f.backlog > 0 {
                    actions.push(ScaleAction::ScaleOut { func: f.func, count: 1 });
                }
                continue;
            }
            let n = f.rps_window.len().min(self.horizon);
            if n == 0 {
                continue;
            }
            let recent = &f.rps_window[f.rps_window.len() - n..];
            let mean = recent.iter().sum::<u64>() as f64 / n as f64;
            // Histogram prior: provision 20% headroom above the average.
            let wanted = mean * 1.2;
            let capacity = f.capacity_rps * f64::from(deployed);
            if wanted > capacity {
                let count = ((wanted - capacity) / f.capacity_rps.max(1e-9)).ceil().max(1.0) as u32;
                actions.push(ScaleAction::ScaleOut { func: f.func, count });
            } else if f.max_idle >= self.keep_alive
                && ((f.ready_instances > 1
                    && wanted < f.capacity_rps * f64::from(f.ready_instances - 1))
                    || (f.ready_instances == 1 && mean == 0.0))
            {
                actions.push(ScaleAction::ScaleIn { func: f.func, count: 1 });
            }
        }
        actions
    }

    fn name(&self) -> &str {
        "infless+-keepalive"
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use dilu_cluster::FunctionKind;

    fn view(window: Vec<u64>, ready: u32, starting: u32, idle_secs: u64) -> FunctionScaleView {
        FunctionScaleView {
            func: FunctionId(1),
            kind: FunctionKind::Inference { slo: SimDuration::from_millis(100), batch: 4 },
            rps_window: window,
            ready_instances: ready,
            starting_instances: starting,
            backlog: 0,
            capacity_rps: 50.0,
            max_idle: SimDuration::from_secs(idle_secs),
            pending_fetch_bytes: 0,
            quota: dilu_cluster::QuotaView::none(),
        }
    }

    #[test]
    fn reactive_scales_out_on_a_single_hot_second() {
        let mut s = ReactiveScaler::new();
        let mut w = vec![10u64; 39];
        w.push(160);
        let actions = s.on_tick(SimTime::from_secs(40), &[view(w, 1, 0, 0)]);
        assert_eq!(actions, vec![ScaleAction::ScaleOut { func: FunctionId(1), count: 3 }]);
    }

    #[test]
    fn reactive_scales_in_after_short_quiet() {
        let mut s = ReactiveScaler::new();
        let mut fired = Vec::new();
        for sec in 0..12 {
            fired.extend(s.on_tick(SimTime::from_secs(sec), &[view(vec![5u64; 40], 3, 0, sec)]));
        }
        assert!(
            fired.contains(&ScaleAction::ScaleIn { func: FunctionId(1), count: 1 }),
            "quiet period must trigger scale-in, got {fired:?}"
        );
    }

    #[test]
    fn keepalive_smooths_single_second_bursts() {
        let mut s = KeepAliveScaler::default();
        let mut w = vec![10u64; 39];
        w.push(160);
        // Mean over 5 s = 40 rps → within one instance's capacity.
        let actions = s.on_tick(SimTime::from_secs(40), &[view(w, 1, 0, 0)]);
        assert!(actions.is_empty());
    }

    #[test]
    fn keepalive_scales_out_on_sustained_load() {
        let mut s = KeepAliveScaler::default();
        let w = vec![120u64; 40];
        let actions = s.on_tick(SimTime::from_secs(40), &[view(w, 1, 0, 0)]);
        assert_eq!(actions, vec![ScaleAction::ScaleOut { func: FunctionId(1), count: 2 }]);
    }

    #[test]
    fn keepalive_retains_idle_instances_until_expiry() {
        let mut s = KeepAliveScaler::default();
        // Idle 30 s < 50 s keep-alive → retained.
        let actions = s.on_tick(SimTime::from_secs(60), &[view(vec![0u64; 40], 2, 0, 30)]);
        assert!(actions.is_empty());
        // Idle 55 s ≥ keep-alive → reclaimed.
        let actions = s.on_tick(SimTime::from_secs(90), &[view(vec![0u64; 40], 2, 0, 55)]);
        assert_eq!(actions, vec![ScaleAction::ScaleIn { func: FunctionId(1), count: 1 }]);
    }

    #[test]
    fn both_cold_start_from_zero_on_backlog() {
        let mut r = ReactiveScaler::new();
        let mut k = KeepAliveScaler::default();
        let mut v = view(vec![0u64; 40], 0, 0, 0);
        v.backlog = 2;
        assert_eq!(r.on_tick(SimTime::ZERO, &[v.clone()]).len(), 1);
        assert_eq!(k.on_tick(SimTime::ZERO, &[v]).len(), 1);
    }
}

//! The baseline systems Dilu is evaluated against (paper §5.1).
//!
//! GPU-level share policies, all running on the same
//! [`dilu_gpu::GpuEngine`] substrate as Dilu's RCKM:
//!
//! * [`MpsPolicy`] — NVIDIA MPS static spatial partitioning; `MPS-l` grants
//!   each instance its `limit` quota, `MPS-r` its `request` quota, always.
//! * [`TgsPolicy`] — TGS (NSDI '23) transparent sharing: productive
//!   (SLO-sensitive) jobs run unthrottled; opportunistic jobs receive a tiny
//!   adaptive rate that grows only while the productive side is idle.
//! * [`FastGsPolicy`] — FaST-GShare spatio-temporal sharing: MPS partitions
//!   plus temporal lending of idle quotas, with the CUDA-event bookkeeping
//!   overhead the paper observes.
//!
//! Cluster-level autoscalers:
//!
//! * [`ReactiveScaler`] — FaST-GS+-style eager scale-out/in on instantaneous
//!   load.
//! * [`KeepAliveScaler`] — INFless+-style prediction/keep-alive scaling:
//!   fewer cold starts, paid for with idle GPU time.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod policies;
mod scaling;

pub use policies::{FastGsPolicy, MpsPolicy, QuotaSource, TgsPolicy};
pub use scaling::{KeepAliveScaler, ReactiveScaler};

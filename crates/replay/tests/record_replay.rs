//! The record→replay acceptance oracle, end to end through the library:
//! a recorded run replays byte-identically, the arrival override really
//! feeds the log (not a re-sample), `--until`-style time travel lands on
//! a coherent audit, and the two-log diff localizes a seed divergence.

use dilu_core::{Registry, ScenarioConfig};
use dilu_replay::{diff, record, replay, replay_until, EventLog};
use dilu_sim::{SimDuration, SimTime};

fn scenario_toml(seed: u64) -> String {
    format!(
        r#"
name = "replay-roundtrip"

[cluster]
nodes = 1
gpus_per_node = 2

[system]
preset = "dilu"

[system.controller]
name = "co-scale"

[run]
horizon_secs = 8
seed = {seed}

[[functions]]
model = "bert-base"
arrivals = {{ process = "trace", shape = "bursty", rate = 25.0, scale = 4.0 }}
"#
    )
}

fn config(seed: u64) -> ScenarioConfig {
    ScenarioConfig::from_toml_str(&scenario_toml(seed)).expect("test scenario parses")
}

#[test]
fn record_then_replay_is_byte_exact() {
    let registry = Registry::with_defaults();
    let log = record(&config(7), &registry).expect("recording runs");
    assert!(!log.events.is_empty(), "an event-driven run records its stream");
    assert!(!log.audits.is_empty(), "controller ticks record digests");
    assert!(!log.report_json.is_empty());

    // Through the binary form, as the CLI round-trips it.
    let parsed = EventLog::from_bytes(&log.to_bytes()).expect("log parses back");
    assert_eq!(parsed, log);

    let verdict = replay(&parsed, &registry).expect("replay runs");
    assert!(verdict.report_matches, "replayed report must be byte-identical");
    assert_eq!(verdict.event_divergence, None);
    assert_eq!(verdict.audit_divergence, None);
    assert!(verdict.is_exact());
    assert_eq!(verdict.replayed_events, log.events.len());
    assert_eq!(verdict.report_json, log.report_json);
}

#[test]
fn replay_feeds_arrivals_from_the_log_not_a_resample() {
    let registry = Registry::with_defaults();
    let mut log = record(&config(7), &registry).expect("recording runs");
    // Tamper with the recorded arrival schedule. If replay re-sampled the
    // arrival process from the config, this edit would be invisible and
    // the replayed report would still match; because replay feeds the
    // log, the run must visibly change.
    let (_, times) = log.arrivals.first_mut().expect("one inference function");
    assert!(times.len() > 4, "the bursty trace produces a real schedule");
    times.truncate(times.len() / 2);
    let verdict = replay(&log, &registry).expect("replay runs");
    assert!(
        !verdict.report_matches,
        "halving the logged arrivals must change the replayed report — otherwise replay \
         re-sampled the process instead of reading the log"
    );
}

#[test]
fn replay_until_time_travels_to_a_coherent_audit() {
    let registry = Registry::with_defaults();
    let log = record(&config(7), &registry).expect("recording runs");
    let snapshot = replay_until(&log, &registry, SimTime::ZERO + SimDuration::from_secs(3))
        .expect("partial replay runs");
    assert!(
        snapshot.now <= SimTime::ZERO + SimDuration::from_secs(3) + SimDuration::from_millis(5)
    );
    assert!(!snapshot.functions.is_empty(), "the deployed function is audited");
    let func = &snapshot.functions[0];
    assert_eq!(
        func.arrived,
        func.completed + func.outstanding(),
        "conservation holds at the stop instant"
    );
    assert!(func.pending_arrivals > 0, "mid-run stop leaves future arrivals pending");
}

#[test]
fn diff_localizes_the_first_divergence_between_seeds() {
    let registry = Registry::with_defaults();
    let a = record(&config(7), &registry).expect("seed 7 records");
    let b = record(&config(8), &registry).expect("seed 8 records");

    let self_diff = diff(&a, &a);
    assert!(self_diff.identical, "a log must diff clean against itself");

    let d = diff(&a, &b);
    assert!(!d.identical);
    let rendered = d.render();
    assert!(
        d.first_divergence.is_some(),
        "different seeds must diverge in the event stream:\n{rendered}"
    );
    let detail = d.detail.expect("divergence is localized");
    assert!(detail.contains("first divergent event"), "{detail}");
    assert!(detail.contains("t="), "the divergent event carries its instant: {detail}");
    assert!(detail.contains("seq="), "the divergent event carries its seq: {detail}");
}

//! The record side: run a scenario with the event and audit hooks armed
//! and assemble a replayable [`EventLog`].

use std::cell::RefCell;
use std::rc::Rc;

use dilu_cluster::EventRecord;
use dilu_core::{Registry, ScenarioConfig};
use dilu_sim::SimTime;

use crate::log::{fnv1a, EventLog, LoggedEvent};
use crate::ReplayError;

/// Captured arrival-refill chunks: `(function id, chunk)` in pull order.
type ArrivalChunks = Vec<(u32, Vec<SimTime>)>;

/// Digest of an audit snapshot: FNV-1a over its debug rendering. The
/// rendering covers every audited field deterministically (derived
/// `Debug` over plain data), so any accounting divergence between two
/// runs flips the digest at the first differing controller tick.
pub fn audit_digest(snapshot: &dilu_cluster::AuditSnapshot) -> u64 {
    fnv1a(format!("{snapshot:?}").as_bytes())
}

/// Records one full run of `config`: the arrival schedule (captured as
/// the stream of bounded refill chunks the run actually pulled, so even a
/// production-scale scenario records without materializing its schedule),
/// the typed event stream, per-tick audit digests, and the final report
/// JSON — everything [`replay`](crate::replay) needs to reproduce and
/// verify the run.
///
/// # Errors
///
/// Configuration/composition errors surface as
/// [`ReplayError::Scenario`]; serialization failures as
/// [`ReplayError::Serialize`].
pub fn record(config: &ScenarioConfig, registry: &Registry) -> Result<EventLog, ReplayError> {
    let config_json =
        serde_json::to_string(config).map_err(|e| ReplayError::Serialize(e.to_string()))?;
    let scenario = config
        .clone()
        .into_builder(registry)
        .and_then(|b| b.build())
        .map_err(|e| ReplayError::Scenario(e.to_string()))?;
    let horizon = scenario.horizon();
    let drain = scenario.drain();
    let mut sim = scenario.into_sim();
    // One log record per refill chunk, in pull order. Replay concatenates
    // them per function, so chunk boundaries need not be preserved — they
    // re-derive from the round-tripped `[sim] arrival_window`.
    let arrivals: Rc<RefCell<ArrivalChunks>> = Rc::new(RefCell::new(Vec::new()));
    let arrivals_tap = Rc::clone(&arrivals);
    sim.set_arrival_hook(Box::new(move |id, chunk| {
        arrivals_tap.borrow_mut().push((id.0, chunk.to_vec()));
    }));

    let events: Rc<RefCell<Vec<LoggedEvent>>> = Rc::new(RefCell::new(Vec::new()));
    let events_tap = Rc::clone(&events);
    sim.set_event_hook(Box::new(move |r: EventRecord| {
        events_tap.borrow_mut().push(LoggedEvent {
            at: r.at,
            seq: r.seq,
            kind: r.kind,
            uid: r.uid,
        });
    }));
    let audits: Rc<RefCell<Vec<(SimTime, u64)>>> = Rc::new(RefCell::new(Vec::new()));
    let audits_tap = Rc::clone(&audits);
    sim.set_audit_hook(Box::new(move |snapshot| {
        audits_tap.borrow_mut().push((snapshot.now, audit_digest(snapshot)));
    }));

    sim.run_until(SimTime::ZERO + horizon + drain);
    let report = sim.into_report();
    let report_json =
        serde_json::to_string(&report).map_err(|e| ReplayError::Serialize(e.to_string()))?;

    let mut log = EventLog::new(config_json);
    log.arrivals = std::mem::take(&mut *arrivals.borrow_mut());
    log.events = std::mem::take(&mut *events.borrow_mut());
    log.audits = std::mem::take(&mut *audits.borrow_mut());
    log.report_json = report_json;
    Ok(log)
}

//! The versioned binary event-log format.
//!
//! A log file is a fixed header followed by length-prefixed, tagged
//! records:
//!
//! ```text
//! magic    8 bytes   b"DILURPL1"
//! version  u32 LE    FORMAT_VERSION (parsers reject anything newer)
//! hash     u64 LE    FNV-1a of the config JSON bytes
//! cfg_len  u32 LE    length of the scenario config JSON
//! config   cfg_len bytes of JSON (the full ScenarioConfig)
//! records  tag u8 · varint payload_len · payload   (repeated)
//! ```
//!
//! Record payloads use LEB128 varints with zigzag for signed deltas:
//!
//! * `0x01` arrivals — one inference function's recorded arrival
//!   schedule: `varint func_id · varint count · count × varint Δµs`
//!   (ascending deltas from the previous instant in the block);
//! * `0x02` event — one event-core pop: `zigzag Δµs` from the previous
//!   event's instant, `varint seq`, `u8 kind`, `varint uid`;
//! * `0x03` audit — one controller-tick audit digest: `zigzag Δµs` from
//!   the previous audit instant, `u64 LE` FNV-1a digest of the
//!   [`AuditSnapshot`](dilu_cluster::AuditSnapshot) debug rendering;
//! * `0x04` report — the final `ClusterReport` JSON bytes;
//! * `0x05` end — terminator; trailing bytes after it are an error.
//!
//! Unknown tags are skipped via their length prefix (room for additive
//! growth inside one version); a missing terminator, bad magic, or a
//! version from the future fails loudly — a stale log must never replay
//! as garbage.

use dilu_sim::SimTime;

/// The 8-byte file magic.
pub const MAGIC: [u8; 8] = *b"DILURPL1";

/// The current log format version.
pub const FORMAT_VERSION: u32 = 1;

const TAG_ARRIVALS: u8 = 0x01;
const TAG_EVENT: u8 = 0x02;
const TAG_AUDIT: u8 = 0x03;
const TAG_REPORT: u8 = 0x04;
const TAG_END: u8 = 0x05;

/// FNV-1a over a byte string — the log's scenario hash and audit digest
/// primitive (stable, dependency-free, deterministic).
pub fn fnv1a(bytes: &[u8]) -> u64 {
    let mut hash = 0xcbf2_9ce4_8422_2325u64;
    for &b in bytes {
        hash ^= u64::from(b);
        hash = hash.wrapping_mul(0x0000_0100_0000_01B3);
    }
    hash
}

/// One recorded event-core pop (see
/// [`EventRecord`](dilu_cluster::EventRecord), whose fields this
/// mirrors 1:1 in log form).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct LoggedEvent {
    /// The instant the event fired at.
    pub at: SimTime,
    /// Queue insertion sequence (0 for the out-of-heap quantum chain).
    pub seq: u64,
    /// Kind code (`SimEvent::code()` or `QUANTUM_CHAIN_CODE`).
    pub kind: u8,
    /// Instance-uid payload (0 for payload-free kinds).
    pub uid: u64,
}

/// A fully parsed (or to-be-written) event log.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct EventLog {
    /// FNV-1a of `config_json` — recomputed and checked on parse.
    pub scenario_hash: u64,
    /// The recorded scenario, as the exact JSON bytes that hashed.
    pub config_json: String,
    /// Each inference function's pre-run arrival schedule, in
    /// function-id order.
    pub arrivals: Vec<(u32, Vec<SimTime>)>,
    /// Every event-core pop, in execution order.
    pub events: Vec<LoggedEvent>,
    /// Controller-tick audit digests `(instant, digest)`, in order.
    pub audits: Vec<(SimTime, u64)>,
    /// The recorded final `ClusterReport` JSON — the acceptance oracle.
    pub report_json: String,
}

/// A structural log-format error. Every variant is loud and names the
/// failing layer, so a stale or corrupt log can never half-replay.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum LogError {
    /// The file does not start with [`MAGIC`].
    BadMagic,
    /// The file's version is newer than [`FORMAT_VERSION`].
    UnsupportedVersion(u32),
    /// The file ended inside the named structure.
    Truncated(&'static str),
    /// The header hash does not match the config bytes (corruption).
    HashMismatch {
        /// Hash stored in the header.
        recorded: u64,
        /// Hash recomputed from the config bytes.
        computed: u64,
    },
    /// Bytes follow the end-of-log record.
    TrailingBytes,
    /// No end-of-log record was found.
    MissingEnd,
    /// The log carries no final-report record.
    MissingReport,
    /// A non-UTF-8 JSON payload.
    BadUtf8(&'static str),
}

impl std::fmt::Display for LogError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            LogError::BadMagic => write!(f, "not a dilu event log (bad magic)"),
            LogError::UnsupportedVersion(v) => {
                write!(f, "log format version {v} is newer than supported {FORMAT_VERSION}")
            }
            LogError::Truncated(what) => write!(f, "log truncated inside {what}"),
            LogError::HashMismatch { recorded, computed } => write!(
                f,
                "scenario hash mismatch: header {recorded:#018x}, config bytes {computed:#018x} \
                 (corrupt log)"
            ),
            LogError::TrailingBytes => write!(f, "bytes after the end-of-log record"),
            LogError::MissingEnd => write!(f, "no end-of-log record"),
            LogError::MissingReport => write!(f, "log carries no final report record"),
            LogError::BadUtf8(what) => write!(f, "non-UTF-8 {what} payload"),
        }
    }
}

impl std::error::Error for LogError {}

fn put_varint(out: &mut Vec<u8>, mut v: u64) {
    loop {
        let byte = (v & 0x7f) as u8;
        v >>= 7;
        if v == 0 {
            out.push(byte);
            return;
        }
        out.push(byte | 0x80);
    }
}

fn get_varint(input: &[u8], pos: &mut usize) -> Result<u64, LogError> {
    let mut v = 0u64;
    let mut shift = 0u32;
    loop {
        let byte = *input.get(*pos).ok_or(LogError::Truncated("varint"))?;
        *pos += 1;
        v |= u64::from(byte & 0x7f) << shift;
        if byte & 0x80 == 0 {
            return Ok(v);
        }
        shift += 7;
        if shift >= 64 {
            return Err(LogError::Truncated("varint overflow"));
        }
    }
}

fn zigzag(v: i64) -> u64 {
    ((v << 1) ^ (v >> 63)) as u64
}

fn unzigzag(v: u64) -> i64 {
    ((v >> 1) as i64) ^ -((v & 1) as i64)
}

fn put_record(out: &mut Vec<u8>, tag: u8, payload: &[u8]) {
    out.push(tag);
    put_varint(out, payload.len() as u64);
    out.extend_from_slice(payload);
}

impl EventLog {
    /// A fresh, empty log for `config_json` (the hash is derived).
    pub fn new(config_json: String) -> Self {
        EventLog {
            scenario_hash: fnv1a(config_json.as_bytes()),
            config_json,
            arrivals: Vec::new(),
            events: Vec::new(),
            audits: Vec::new(),
            report_json: String::new(),
        }
    }

    /// Serializes the log to its binary form.
    pub fn to_bytes(&self) -> Vec<u8> {
        let mut out = Vec::with_capacity(64 + self.config_json.len() + self.events.len() * 6);
        out.extend_from_slice(&MAGIC);
        out.extend_from_slice(&FORMAT_VERSION.to_le_bytes());
        out.extend_from_slice(&self.scenario_hash.to_le_bytes());
        out.extend_from_slice(&(self.config_json.len() as u32).to_le_bytes());
        out.extend_from_slice(self.config_json.as_bytes());
        let mut payload = Vec::new();
        for (func, times) in &self.arrivals {
            payload.clear();
            put_varint(&mut payload, u64::from(*func));
            put_varint(&mut payload, times.len() as u64);
            let mut prev = 0u64;
            for t in times {
                let us = t.as_micros();
                put_varint(&mut payload, us - prev);
                prev = us;
            }
            put_record(&mut out, TAG_ARRIVALS, &payload);
        }
        let mut prev_at = 0i64;
        for e in &self.events {
            payload.clear();
            let us = e.at.as_micros() as i64;
            put_varint(&mut payload, zigzag(us - prev_at));
            prev_at = us;
            put_varint(&mut payload, e.seq);
            payload.push(e.kind);
            put_varint(&mut payload, e.uid);
            put_record(&mut out, TAG_EVENT, &payload);
        }
        let mut prev_at = 0i64;
        for (at, digest) in &self.audits {
            payload.clear();
            let us = at.as_micros() as i64;
            put_varint(&mut payload, zigzag(us - prev_at));
            prev_at = us;
            payload.extend_from_slice(&digest.to_le_bytes());
            put_record(&mut out, TAG_AUDIT, &payload);
        }
        put_record(&mut out, TAG_REPORT, self.report_json.as_bytes());
        put_record(&mut out, TAG_END, &[]);
        out
    }

    /// Parses a binary log, validating magic, version, hash, and
    /// structure.
    pub fn from_bytes(bytes: &[u8]) -> Result<EventLog, LogError> {
        let mut pos = 0usize;
        let magic = bytes.get(..8).ok_or(LogError::Truncated("header"))?;
        if magic != MAGIC {
            return Err(LogError::BadMagic);
        }
        pos += 8;
        let version = read_u32(bytes, &mut pos, "version")?;
        if version > FORMAT_VERSION {
            return Err(LogError::UnsupportedVersion(version));
        }
        let scenario_hash = read_u64(bytes, &mut pos, "scenario hash")?;
        let cfg_len = read_u32(bytes, &mut pos, "config length")? as usize;
        let cfg_bytes =
            bytes.get(pos..pos + cfg_len).ok_or(LogError::Truncated("config JSON"))?.to_vec();
        pos += cfg_len;
        let config_json =
            String::from_utf8(cfg_bytes).map_err(|_| LogError::BadUtf8("config JSON"))?;
        let computed = fnv1a(config_json.as_bytes());
        if computed != scenario_hash {
            return Err(LogError::HashMismatch { recorded: scenario_hash, computed });
        }
        let mut log = EventLog {
            scenario_hash,
            config_json,
            arrivals: Vec::new(),
            events: Vec::new(),
            audits: Vec::new(),
            report_json: String::new(),
        };
        let mut saw_report = false;
        let mut prev_event_at = 0i64;
        let mut prev_audit_at = 0i64;
        loop {
            let tag = *bytes.get(pos).ok_or(LogError::MissingEnd)?;
            pos += 1;
            let len = get_varint(bytes, &mut pos)? as usize;
            let payload = bytes.get(pos..pos + len).ok_or(LogError::Truncated("record"))?;
            pos += len;
            match tag {
                TAG_ARRIVALS => {
                    let mut p = 0usize;
                    let func = u32::try_from(get_varint(payload, &mut p)?)
                        .map_err(|_| LogError::Truncated("function id"))?;
                    let count = get_varint(payload, &mut p)? as usize;
                    let mut times = Vec::with_capacity(count.min(1 << 20));
                    let mut prev = 0u64;
                    for _ in 0..count {
                        prev += get_varint(payload, &mut p)?;
                        times.push(SimTime::from_micros(prev));
                    }
                    log.arrivals.push((func, times));
                }
                TAG_EVENT => {
                    let mut p = 0usize;
                    prev_event_at += unzigzag(get_varint(payload, &mut p)?);
                    let seq = get_varint(payload, &mut p)?;
                    let kind = *payload.get(p).ok_or(LogError::Truncated("event kind"))?;
                    p += 1;
                    let uid = get_varint(payload, &mut p)?;
                    let at = u64::try_from(prev_event_at)
                        .map_err(|_| LogError::Truncated("negative event instant"))?;
                    log.events.push(LoggedEvent { at: SimTime::from_micros(at), seq, kind, uid });
                }
                TAG_AUDIT => {
                    let mut p = 0usize;
                    prev_audit_at += unzigzag(get_varint(payload, &mut p)?);
                    let digest_bytes = payload
                        .get(p..p + 8)
                        .ok_or(LogError::Truncated("audit digest"))?
                        .try_into()
                        .expect("8-byte slice");
                    let at = u64::try_from(prev_audit_at)
                        .map_err(|_| LogError::Truncated("negative audit instant"))?;
                    log.audits.push((SimTime::from_micros(at), u64::from_le_bytes(digest_bytes)));
                }
                TAG_REPORT => {
                    log.report_json = String::from_utf8(payload.to_vec())
                        .map_err(|_| LogError::BadUtf8("report JSON"))?;
                    saw_report = true;
                }
                TAG_END => {
                    if pos != bytes.len() {
                        return Err(LogError::TrailingBytes);
                    }
                    if !saw_report {
                        return Err(LogError::MissingReport);
                    }
                    return Ok(log);
                }
                // Unknown tag within a supported version: additive
                // record kinds skip via the length prefix.
                _ => {}
            }
        }
    }
}

fn read_u32(bytes: &[u8], pos: &mut usize, what: &'static str) -> Result<u32, LogError> {
    let slice = bytes.get(*pos..*pos + 4).ok_or(LogError::Truncated(what))?;
    *pos += 4;
    Ok(u32::from_le_bytes(slice.try_into().expect("4-byte slice")))
}

fn read_u64(bytes: &[u8], pos: &mut usize, what: &'static str) -> Result<u64, LogError> {
    let slice = bytes.get(*pos..*pos + 8).ok_or(LogError::Truncated(what))?;
    *pos += 8;
    Ok(u64::from_le_bytes(slice.try_into().expect("8-byte slice")))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn varints_round_trip() {
        let mut out = Vec::new();
        let values = [0u64, 1, 127, 128, 300, u64::from(u32::MAX), u64::MAX];
        for &v in &values {
            put_varint(&mut out, v);
        }
        let mut pos = 0;
        for &v in &values {
            assert_eq!(get_varint(&out, &mut pos).unwrap(), v);
        }
        assert_eq!(pos, out.len());
    }

    #[test]
    fn zigzag_round_trips_signed_deltas() {
        for v in [0i64, 1, -1, 63, -64, i64::MAX, i64::MIN] {
            assert_eq!(unzigzag(zigzag(v)), v);
        }
    }

    fn sample_log() -> EventLog {
        let mut log = EventLog::new("{\"name\":\"sample\"}".to_owned());
        log.arrivals.push((
            0,
            vec![SimTime::from_millis(5), SimTime::from_millis(5), SimTime::from_millis(40)],
        ));
        log.arrivals.push((3, Vec::new()));
        log.events = vec![
            LoggedEvent { at: SimTime::from_millis(5), seq: 2, kind: 1, uid: 0 },
            LoggedEvent { at: SimTime::from_millis(5), seq: 7, kind: 2, uid: 42 },
            LoggedEvent { at: SimTime::from_millis(10), seq: 0, kind: 8, uid: 0 },
        ];
        log.audits = vec![(SimTime::from_secs(1), 0xDEAD_BEEF), (SimTime::from_secs(2), 77)];
        log.report_json = "{\"peak_gpus\":3}".to_owned();
        log
    }

    #[test]
    fn logs_round_trip_bytes_exactly() {
        let log = sample_log();
        let bytes = log.to_bytes();
        let parsed = EventLog::from_bytes(&bytes).expect("round trip");
        assert_eq!(parsed, log);
        assert_eq!(parsed.to_bytes(), bytes, "re-encoding is byte-stable");
    }

    #[test]
    fn bad_magic_version_and_truncation_fail_loudly() {
        let bytes = sample_log().to_bytes();
        let mut wrong_magic = bytes.clone();
        wrong_magic[0] = b'X';
        assert_eq!(EventLog::from_bytes(&wrong_magic), Err(LogError::BadMagic));

        let mut future = bytes.clone();
        future[8..12].copy_from_slice(&(FORMAT_VERSION + 1).to_le_bytes());
        assert_eq!(
            EventLog::from_bytes(&future),
            Err(LogError::UnsupportedVersion(FORMAT_VERSION + 1))
        );

        for cut in [4usize, 11, 19, bytes.len() - 1] {
            assert!(EventLog::from_bytes(&bytes[..cut]).is_err(), "cut at {cut} must fail");
        }

        let mut trailing = bytes.clone();
        trailing.push(0);
        assert_eq!(EventLog::from_bytes(&trailing), Err(LogError::TrailingBytes));
    }

    #[test]
    fn config_corruption_fails_the_hash_check() {
        let mut bytes = sample_log().to_bytes();
        // Flip one byte inside the config JSON region (starts at 24).
        bytes[25] ^= 0x20;
        assert!(matches!(EventLog::from_bytes(&bytes), Err(LogError::HashMismatch { .. })));
    }
}

//! The replay side: rebuild the recorded scenario from the log (never
//! re-sampling an arrival process), re-run it with verifying hooks, and
//! localize any divergence; plus the pure two-log structural diff.

use std::cell::RefCell;
use std::rc::Rc;

use dilu_cluster::{AuditSnapshot, EventRecord, FunctionId, SimEvent};
use dilu_core::{Registry, Scenario, ScenarioConfig};
use dilu_sim::SimTime;

use crate::log::{EventLog, LoggedEvent};
use crate::record::audit_digest;
use crate::ReplayError;

fn secs(at: SimTime) -> String {
    format!("{:.6}s", at.as_micros() as f64 / 1e6)
}

fn describe(e: &LoggedEvent) -> String {
    let name = SimEvent::code_name(e.kind);
    if e.uid == 0 {
        format!("t={} seq={} {}", secs(e.at), e.seq, name)
    } else {
        format!("t={} seq={} {}(uid {})", secs(e.at), e.seq, name, e.uid)
    }
}

/// Rebuilds the recorded scenario from a parsed log: parses the config
/// JSON, verifies it still round-trips byte-identically (schema drift in
/// a newer binary fails loudly instead of replaying a reinterpreted
/// scenario), and overrides every recorded arrival schedule with the
/// exact logged instants so no arrival process is ever re-sampled.
pub fn build_replay_scenario(log: &EventLog, registry: &Registry) -> Result<Scenario, ReplayError> {
    let config = ScenarioConfig::from_json_str(&log.config_json)
        .map_err(|e| ReplayError::Scenario(format!("recorded config does not parse: {e}")))?;
    let round_trip =
        serde_json::to_string(&config).map_err(|e| ReplayError::Serialize(e.to_string()))?;
    if round_trip != log.config_json {
        return Err(ReplayError::SchemaDrift);
    }
    let mut builder =
        config.into_builder(registry).map_err(|e| ReplayError::Scenario(e.to_string()))?;
    // The log holds one record per refill chunk; `arrival_times_for`
    // replaces a function's whole source, so concatenate each function's
    // chunks (already time-ordered) before attaching. The replayed run
    // re-streams them through the same round-tripped `[sim]
    // arrival_window`, so refill instants — and thus audit digests — match
    // the recording exactly.
    let mut merged: std::collections::BTreeMap<u32, Vec<dilu_sim::SimTime>> =
        std::collections::BTreeMap::new();
    for (func, times) in &log.arrivals {
        merged.entry(*func).or_default().extend(times.iter().copied());
    }
    for (func, times) in merged {
        builder = builder.arrival_times_for(FunctionId(func), times);
    }
    builder.build().map_err(|e| ReplayError::Scenario(e.to_string()))
}

/// The verdict of one verified replay.
#[derive(Debug, Clone)]
pub struct ReplayReport {
    /// The replayed run's final `ClusterReport` JSON.
    pub report_json: String,
    /// `true` when the replayed report is byte-identical to the recorded
    /// one — the acceptance oracle.
    pub report_matches: bool,
    /// First event-stream divergence, if any (human-readable).
    pub event_divergence: Option<String>,
    /// First audit-digest divergence, if any (human-readable).
    pub audit_divergence: Option<String>,
    /// Events the replayed run popped.
    pub replayed_events: usize,
    /// Events the log recorded.
    pub logged_events: usize,
}

impl ReplayReport {
    /// `true` when the replay reproduced the recording exactly.
    pub fn is_exact(&self) -> bool {
        self.report_matches && self.event_divergence.is_none() && self.audit_divergence.is_none()
    }
}

#[derive(Debug)]
struct VerifyState {
    expected: Vec<LoggedEvent>,
    index: usize,
    divergence: Option<String>,
}

/// Replays a log end to end with verifying hooks: every popped event is
/// checked against the recorded stream in order, every controller-tick
/// audit digest against the recorded digest, and the final report JSON
/// against the recorded bytes.
pub fn replay(log: &EventLog, registry: &Registry) -> Result<ReplayReport, ReplayError> {
    let scenario = build_replay_scenario(log, registry)?;
    let horizon = scenario.horizon();
    let drain = scenario.drain();
    let mut sim = scenario.into_sim();

    let verify = Rc::new(RefCell::new(VerifyState {
        expected: log.events.clone(),
        index: 0,
        divergence: None,
    }));
    let verify_tap = Rc::clone(&verify);
    sim.set_event_hook(Box::new(move |r: EventRecord| {
        let mut v = verify_tap.borrow_mut();
        let got = LoggedEvent { at: r.at, seq: r.seq, kind: r.kind, uid: r.uid };
        if v.divergence.is_none() {
            match v.expected.get(v.index) {
                Some(want) if *want != got => {
                    v.divergence = Some(format!(
                        "event {} diverged: recorded {}, replayed {}",
                        v.index,
                        describe(want),
                        describe(&got)
                    ));
                }
                None => {
                    v.divergence = Some(format!(
                        "replay popped extra event {} past the recorded stream: {}",
                        v.index,
                        describe(&got)
                    ));
                }
                _ => {}
            }
        }
        v.index += 1;
    }));

    let audits: Rc<RefCell<(usize, Option<String>)>> = Rc::new(RefCell::new((0, None)));
    let audits_tap = Rc::clone(&audits);
    let logged_audits = log.audits.clone();
    sim.set_audit_hook(Box::new(move |snapshot| {
        let mut state = audits_tap.borrow_mut();
        let index = state.0;
        state.0 += 1;
        if state.1.is_some() {
            return;
        }
        let digest = audit_digest(snapshot);
        match logged_audits.get(index) {
            Some(&(at, want)) if at != snapshot.now || want != digest => {
                state.1 = Some(format!(
                    "audit {index} diverged: recorded t={} digest {want:#018x}, replayed t={} \
                     digest {digest:#018x}",
                    secs(at),
                    secs(snapshot.now),
                ));
            }
            None => {
                state.1 = Some(format!(
                    "replay produced extra audit {index} at t={} past the recorded stream",
                    secs(snapshot.now)
                ));
            }
            _ => {}
        }
    }));

    sim.run_until(SimTime::ZERO + horizon + drain);
    let report = sim.into_report();
    let report_json =
        serde_json::to_string(&report).map_err(|e| ReplayError::Serialize(e.to_string()))?;

    let verify = Rc::try_unwrap(verify).expect("hooks dropped with the sim").into_inner();
    let replayed_events = verify.index;
    let mut event_divergence = verify.divergence;
    if event_divergence.is_none() && replayed_events < log.events.len() {
        event_divergence = Some(format!(
            "replay stopped after {replayed_events} events; the log records {} (next recorded: {})",
            log.events.len(),
            describe(&log.events[replayed_events])
        ));
    }
    let (replayed_audits, mut audit_divergence) =
        Rc::try_unwrap(audits).expect("hooks dropped with the sim").into_inner();
    if audit_divergence.is_none() && replayed_audits < log.audits.len() {
        audit_divergence = Some(format!(
            "replay produced {replayed_audits} audits; the log records {}",
            log.audits.len()
        ));
    }

    Ok(ReplayReport {
        report_matches: report_json == log.report_json,
        report_json,
        event_divergence,
        audit_divergence,
        replayed_events,
        logged_events: log.events.len(),
    })
}

/// Replays a log up to the instant `until` and returns the full cluster
/// state audit at the stopping point — time-travel debugging through the
/// existing [`AuditSnapshot`] machinery. The stop instant is clamped to
/// the recorded run's end (horizon + drain).
pub fn replay_until(
    log: &EventLog,
    registry: &Registry,
    until: SimTime,
) -> Result<AuditSnapshot, ReplayError> {
    let scenario = build_replay_scenario(log, registry)?;
    let end = SimTime::ZERO + scenario.horizon() + scenario.drain();
    let mut sim = scenario.into_sim();
    sim.run_until(until.min(end));
    Ok(sim.audit())
}

/// The structural diff of two logs: header comparison plus the first
/// divergent event with the audit digests bracketing it.
#[derive(Debug, Clone)]
pub struct DiffReport {
    /// Header-level differences (scenario hash/config, stream lengths).
    pub notes: Vec<String>,
    /// Index of the first divergent event, if the streams differ.
    pub first_divergence: Option<usize>,
    /// Human-readable localization of the divergence.
    pub detail: Option<String>,
    /// `true` when the two logs are byte-equivalent in every compared
    /// dimension.
    pub identical: bool,
}

impl DiffReport {
    /// Renders the diff as human-readable lines.
    pub fn render(&self) -> String {
        let mut out = String::new();
        for note in &self.notes {
            out.push_str(note);
            out.push('\n');
        }
        if let Some(detail) = &self.detail {
            out.push_str(detail);
            out.push('\n');
        }
        if self.identical {
            out.push_str("logs are equivalent: same scenario, events, audits, and report\n");
        }
        out
    }
}

/// The audit digest at or immediately before `at`, if any.
fn audit_before(log: &EventLog, at: SimTime) -> Option<(SimTime, u64)> {
    log.audits.iter().rev().find(|(t, _)| *t <= at).copied()
}

/// Walks two logs and localizes the first divergent event: its index,
/// instant, sequence number, payload on each side, and the audit digests
/// around it. A pure structural comparison — nothing is re-simulated.
pub fn diff(a: &EventLog, b: &EventLog) -> DiffReport {
    let mut notes = Vec::new();
    if a.scenario_hash != b.scenario_hash {
        notes.push(format!(
            "scenarios differ: hash {:#018x} vs {:#018x} (the runs were configured differently)",
            a.scenario_hash, b.scenario_hash
        ));
    }
    if a.arrivals != b.arrivals {
        let which: Vec<u32> =
            a.arrivals.iter().zip(&b.arrivals).filter(|(x, y)| x != y).map(|(x, _)| x.0).collect();
        notes.push(format!(
            "arrival schedules differ (functions {:?}) — expected when the seeds differ",
            which
        ));
    }
    notes.push(format!(
        "events: {} vs {}; audits: {} vs {}",
        a.events.len(),
        b.events.len(),
        a.audits.len(),
        b.audits.len()
    ));

    let mut first_divergence = None;
    let mut detail = None;
    let limit = a.events.len().max(b.events.len());
    for i in 0..limit {
        let ea = a.events.get(i);
        let eb = b.events.get(i);
        if ea == eb {
            continue;
        }
        first_divergence = Some(i);
        let mut text = format!("first divergent event at index {i}:\n");
        match (ea, eb) {
            (Some(ea), Some(eb)) => {
                text.push_str(&format!("  log A: {}\n  log B: {}\n", describe(ea), describe(eb)));
            }
            (Some(ea), None) => {
                text.push_str(&format!("  log A: {}\n  log B: <end of stream>\n", describe(ea)));
            }
            (None, Some(eb)) => {
                text.push_str(&format!("  log A: <end of stream>\n  log B: {}\n", describe(eb)));
            }
            (None, None) => unreachable!("i < limit implies one side has an event"),
        }
        let at = ea.or(eb).expect("one side present").at;
        match (audit_before(a, at), audit_before(b, at)) {
            (Some((ta, da)), Some((tb, db))) => {
                let delta = if (ta, da) == (tb, db) {
                    "identical — state first forked between this audit and the divergent event"
                } else {
                    "already differ — state forked before this audit"
                };
                text.push_str(&format!(
                    "  audit before: A t={} {da:#018x} | B t={} {db:#018x} ({delta})\n",
                    secs(ta),
                    secs(tb),
                ));
            }
            _ => text.push_str("  no audit digest precedes the divergence\n"),
        }
        detail = Some(text);
        break;
    }
    if first_divergence.is_none() && a.audits != b.audits {
        let mismatch = a
            .audits
            .iter()
            .zip(&b.audits)
            .position(|(x, y)| x != y)
            .unwrap_or(a.audits.len().min(b.audits.len()));
        detail = Some(format!("event streams match but audit digests diverge at tick {mismatch}"));
    }
    let report_differs = a.report_json != b.report_json;
    if report_differs && first_divergence.is_none() && detail.is_none() {
        detail = Some("event streams match but the final reports differ".to_owned());
    }
    let identical = a.scenario_hash == b.scenario_hash
        && a.arrivals == b.arrivals
        && first_divergence.is_none()
        && a.audits == b.audits
        && !report_differs;
    DiffReport { notes, first_divergence, detail, identical }
}

//! Deterministic record/replay and time-travel debugging for the Dilu
//! reproduction.
//!
//! [`record`] runs any scenario with the event-core and audit hooks
//! armed and assembles a compact, versioned binary [`EventLog`]: the
//! scenario config (hashed into the header so stale logs fail loudly),
//! every inference function's pre-run arrival schedule (so replay never
//! re-samples an arrival process), the typed event stream in execution
//! order, per-controller-tick audit digests, and the final
//! `ClusterReport` JSON.
//!
//! [`replay`] rebuilds the scenario from the log alone and re-runs it
//! with verifying hooks: byte-identical report JSON is the acceptance
//! oracle, and the first diverging event or audit digest is localized in
//! the verdict. [`replay_until`] stops a replay at an instant and hands
//! back the full [`AuditSnapshot`](dilu_cluster::AuditSnapshot) — time
//! travel through the existing audit machinery. [`diff`] structurally
//! compares two logs and pins the first divergent event with the audit
//! delta around it.
//!
//! The CLI front door is `dilu record` / `dilu replay` (see
//! `dilu-cli`); the fuzzer's record-then-replay oracle lives in
//! `dilu-harness`.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod log;
mod record;
mod replay;

pub use crate::log::{fnv1a, EventLog, LogError, LoggedEvent, FORMAT_VERSION, MAGIC};
pub use crate::record::{audit_digest, record};
pub use crate::replay::{
    build_replay_scenario, diff, replay, replay_until, DiffReport, ReplayReport,
};

/// A record/replay failure, separating log-format problems from
/// scenario composition and serialization ones.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum ReplayError {
    /// The log bytes are structurally invalid (see [`LogError`]).
    Log(LogError),
    /// The recorded scenario no longer composes (unknown components,
    /// invalid config) — or never did.
    Scenario(String),
    /// Config or report JSON (de)serialization failed.
    Serialize(String),
    /// The recorded config JSON no longer round-trips byte-identically
    /// through this binary's config schema: the log predates a schema
    /// change and must be re-recorded.
    SchemaDrift,
}

impl std::fmt::Display for ReplayError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ReplayError::Log(e) => write!(f, "{e}"),
            ReplayError::Scenario(msg) => write!(f, "scenario error: {msg}"),
            ReplayError::Serialize(msg) => write!(f, "serialization error: {msg}"),
            ReplayError::SchemaDrift => write!(
                f,
                "recorded config no longer round-trips through this binary's schema \
                 (stale log; re-record it)"
            ),
        }
    }
}

impl std::error::Error for ReplayError {}

impl From<LogError> for ReplayError {
    fn from(e: LogError) -> Self {
        ReplayError::Log(e)
    }
}

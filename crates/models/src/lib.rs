//! The DL model zoo used by the Dilu paper's evaluation (§5.1).
//!
//! The paper serves seven models — ResNet152, VGG19, BERT-base,
//! RoBERTa-large, GPT2-large, LLaMA2-7B and ChatGLM3-6B — on real A100s.
//! Here each model is an **analytic profile**: memory footprints, a batching
//! curve (`t_min(b) = t_fixed + t_per·b`), an SM saturation point that grows
//! with batch size, kernel-block intensity, and a training profile
//! (compute + communication phases for DDP, stage + bubble for
//! pipeline-parallel LLMs).
//!
//! The profiles are calibrated so the *shapes* the paper relies on hold:
//! convex ⟨IBS, SMR, TE⟩ surfaces (Fig. 4), ≥40% idle for GPT2-large DDP
//! (Fig. 2), ~25 ms RoBERTa-large kernel launch cycles, and parameter sizes
//! spanning 0.2–12.6 GB.
//!
//! # Examples
//!
//! ```
//! use dilu_models::ModelId;
//!
//! let roberta = ModelId::RobertaLarge.profile();
//! // Doubling SMR beyond saturation buys almost nothing (marginal effect).
//! let t_half = roberta.inference_exec_time(4, dilu_gpu::SmRate::from_percent(50.0));
//! let t_full = roberta.inference_exec_time(4, dilu_gpu::SmRate::from_percent(100.0));
//! assert!(t_full >= t_half.mul_f64(0.95));
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod profile;
mod zoo;

pub use profile::{ModelProfile, ParallelKind, TrainingProfile};
pub use zoo::ModelId;

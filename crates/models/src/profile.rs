//! Analytic per-model performance profiles.

use dilu_gpu::{rate_factor, SmRate, WorkItem};
use dilu_sim::SimDuration;
use serde::{Deserialize, Serialize};

/// Kernel blocks issued per millisecond of saturated execution.
///
/// Calibrated so a busy GPU issues ~2×10⁴ blocks/s, matching the magnitude
/// of the paper's Fig. 14 kernel-count traces.
pub const BLOCKS_PER_SAT_MS: f64 = 20.0;

/// How a model's training job is parallelised across workers.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum ParallelKind {
    /// PyTorch DDP data parallelism: every worker computes a full iteration
    /// then synchronises gradients (an SM-idle communication phase).
    DataParallel,
    /// DeepSpeed pipeline parallelism: each worker hosts one stage and idles
    /// during pipeline bubbles.
    Pipeline,
}

/// A model's training-side profile (per worker).
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct TrainingProfile {
    /// Parallelism pattern used by the paper for this model.
    pub parallelism: ParallelKind,
    /// Compute-phase duration per iteration at saturation.
    pub t_compute: SimDuration,
    /// SM rate at which the training kernel stream saturates.
    pub sat: SmRate,
    /// SM-idle phase per iteration (gradient sync or pipeline bubble).
    pub t_idle: SimDuration,
    /// Device memory per worker (params + grads + optimizer + activations).
    pub mem_bytes: u64,
    /// Samples (images/sequences) processed per iteration per worker.
    pub samples_per_iter: u32,
    /// Unit for throughput reporting ("images/s", "tokens/s").
    pub unit: &'static str,
}

impl TrainingProfile {
    /// Fraction of wall time a solo worker's SMs sit idle (the paper's
    /// Observation-2 GPU idling).
    pub fn idle_fraction(&self) -> f64 {
        let total = self.t_compute + self.t_idle;
        self.t_idle.ratio(total)
    }

    /// Analytic iteration time at effective SM rate `smr` (no co-runners).
    pub fn iter_time(&self, smr: SmRate) -> SimDuration {
        let rate = rate_factor(smr.as_fraction(), self.sat.as_fraction());
        if rate <= 0.0 {
            return SimDuration::from_secs(u64::MAX / 2_000_000);
        }
        self.t_compute.mul_f64(1.0 / rate) + self.t_idle
    }

    /// Analytic throughput (samples per second) at effective SM rate `smr`.
    pub fn throughput(&self, smr: SmRate) -> f64 {
        let t = self.iter_time(smr).as_secs_f64();
        if t <= 0.0 {
            0.0
        } else {
            f64::from(self.samples_per_iter) / t
        }
    }

    /// Kernel blocks issued per compute iteration.
    pub fn kernel_blocks(&self) -> u64 {
        (self.t_compute.as_millis_f64() * BLOCKS_PER_SAT_MS).round() as u64
    }

    /// Builds the compute-phase work item for one iteration.
    pub fn compute_item(&self, tag: u64) -> WorkItem {
        WorkItem::compute(self.t_compute, self.sat, self.kernel_blocks(), tag)
    }

    /// Builds the SM-idle (communication/bubble) work item for one iteration.
    pub fn idle_item(&self, tag: u64) -> WorkItem {
        WorkItem::idle(self.t_idle, tag)
    }
}

/// The complete analytic profile of one DL model.
///
/// Construct via [`ModelId::profile`](crate::ModelId::profile); fields are
/// public because the profile is passive calibration data.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct ModelProfile {
    /// Human-readable name as used in the paper's figures.
    pub name: &'static str,
    /// Parameter memory in bytes (the paper quotes 0.2–12.6 GB).
    pub param_bytes: u64,
    /// Device memory held by a deployed inference instance.
    pub infer_mem_bytes: u64,
    /// Activation bytes per sample crossing a pipeline stage boundary —
    /// what an inter-GPU stage handoff must move when a network plane
    /// prices transfers (hidden-state tensor at the cut, roughly
    /// `hidden_dim × seq_len × dtype` for transformers, feature maps for
    /// CNNs).
    pub act_bytes_per_sample: u64,
    /// Fixed per-batch execution cost at saturation.
    pub infer_t_fixed: SimDuration,
    /// Marginal per-sample execution cost at saturation.
    pub infer_t_per_sample: SimDuration,
    /// Saturation SM rate at batch size 1.
    pub infer_sat_base: SmRate,
    /// Additional saturation SM rate per doubling of batch size.
    pub infer_sat_per_doubling: SmRate,
    /// Latency SLO. For LLMs this is the per-request budget derived from the
    /// paper's time-per-output-token objective.
    pub slo: SimDuration,
    /// Output tokens per request (1 for non-generative models); LLM latency
    /// is reported as time-per-output-token = latency / this.
    pub output_tokens: u32,
    /// `true` for the LLM family (LLaMA2-7B, ChatGLM3-6B).
    pub is_llm: bool,
    /// Training-side profile.
    pub training: TrainingProfile,
}

impl ModelProfile {
    /// Ideal (saturated) execution time for one batch of `batch` requests.
    ///
    /// # Panics
    ///
    /// Panics if `batch` is zero.
    pub fn inference_t_min(&self, batch: u32) -> SimDuration {
        assert!(batch > 0, "batch size must be positive");
        self.infer_t_fixed + self.infer_t_per_sample * u64::from(batch)
    }

    /// SM rate at which a batch of `batch` saturates the card.
    pub fn inference_sat(&self, batch: u32) -> SmRate {
        assert!(batch > 0, "batch size must be positive");
        let doublings = (f64::from(batch)).log2();
        let sat = self.infer_sat_base.as_fraction()
            + self.infer_sat_per_doubling.as_fraction() * doublings;
        SmRate::from_fraction(sat.min(1.0))
    }

    /// Kernel blocks issued by one batch execution.
    pub fn inference_blocks(&self, batch: u32) -> u64 {
        (self.inference_t_min(batch).as_millis_f64() * BLOCKS_PER_SAT_MS).round() as u64
    }

    /// Analytic execution time of one batch at effective SM rate `smr`.
    pub fn inference_exec_time(&self, batch: u32, smr: SmRate) -> SimDuration {
        let sat = self.inference_sat(batch);
        let rate = rate_factor(smr.as_fraction(), sat.as_fraction());
        if rate <= 0.0 {
            return SimDuration::from_secs(u64::MAX / 2_000_000);
        }
        self.inference_t_min(batch).mul_f64(1.0 / rate)
    }

    /// Analytic throughput efficacy TE = throughput / SMR (requests per
    /// second per whole-GPU unit), the objective of the paper's Hybrid
    /// Growth Search.
    pub fn throughput_efficacy(&self, batch: u32, smr: SmRate) -> f64 {
        let t = self.inference_exec_time(batch, smr).as_secs_f64();
        if t <= 0.0 || smr.is_zero() {
            return 0.0;
        }
        f64::from(batch) / t / smr.as_fraction()
    }

    /// Builds the work item executing one inference batch.
    pub fn inference_item(&self, batch: u32, tag: u64) -> WorkItem {
        WorkItem::compute(
            self.inference_t_min(batch),
            self.inference_sat(batch),
            self.inference_blocks(batch),
            tag,
        )
    }

    /// Activation bytes one batch of `batch` samples moves across a
    /// pipeline stage boundary (at least one byte, so a transfer is never
    /// free).
    pub fn activation_bytes(&self, batch: u32) -> u64 {
        (self.act_bytes_per_sample * u64::from(batch)).max(1)
    }

    /// The largest batch whose saturated execution stays within the paper's
    /// `SLO/2` execution budget (the INFless rule Dilu adopts), or `None` if
    /// even batch 1 misses it.
    pub fn max_batch_within_slo(&self, max_batch: u32) -> Option<u32> {
        let budget = self.slo / 2;
        (1..=max_batch).rev().find(|&b| self.inference_t_min(b) <= budget)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ModelId;

    #[test]
    fn batching_is_sublinear_per_request() {
        let m = ModelId::RobertaLarge.profile();
        let t1 = m.inference_t_min(1).as_secs_f64();
        let t8 = m.inference_t_min(8).as_secs_f64();
        assert!(t8 < 8.0 * t1, "batching must amortise fixed cost");
        assert!(t8 > t1, "bigger batches take longer in absolute terms");
    }

    #[test]
    fn saturation_grows_with_batch_and_caps_at_full() {
        let m = ModelId::Gpt2Large.profile();
        assert!(m.inference_sat(8) > m.inference_sat(1));
        assert!(m.inference_sat(1 << 14).as_fraction() <= 1.0);
    }

    #[test]
    fn exec_time_monotone_in_smr() {
        let m = ModelId::ResNet152.profile();
        let mut last = SimDuration::from_secs(1_000_000);
        for pct in [10.0, 20.0, 40.0, 60.0, 80.0, 100.0] {
            let t = m.inference_exec_time(4, SmRate::from_percent(pct));
            assert!(t <= last, "exec time must not increase with SMR");
            last = t;
        }
    }

    #[test]
    fn te_decreases_with_smr() {
        // TE = throughput per SM unit falls as the SM rate grows (the
        // marginal effect of Fig. 4), so HGS stars sit at the lowest
        // SLO-feasible SM rate.
        let m = ModelId::RobertaLarge.profile();
        let mut last = f64::INFINITY;
        for pct in [10.0, 30.0, 50.0, 70.0, 100.0] {
            let te = m.throughput_efficacy(4, SmRate::from_percent(pct));
            assert!(te < last, "TE must decrease with SMR: {te} vs {last}");
            last = te;
        }
    }

    #[test]
    fn roberta_klc_is_about_25ms() {
        // §3.4.1: RoBERTa-large inference KLC ≈ 25 ms per iteration.
        let m = ModelId::RobertaLarge.profile();
        let t = m.inference_t_min(4).as_millis_f64();
        assert!((20.0..32.0).contains(&t), "RoBERTa bs4 t_min {t}ms");
    }

    #[test]
    fn gpt2_ddp_idles_at_least_40_percent() {
        // Observation-2: 4-worker GPT2-large DDP idles >40% of the time.
        let m = ModelId::Gpt2Large.profile();
        assert!(m.training.idle_fraction() >= 0.40);
    }

    #[test]
    fn llama_pipeline_idles_about_20_percent() {
        let m = ModelId::Llama2_7b.profile();
        assert_eq!(m.training.parallelism, ParallelKind::Pipeline);
        let idle = m.training.idle_fraction();
        assert!((0.15..0.25).contains(&idle), "idle fraction {idle}");
    }

    #[test]
    fn training_throughput_saturates() {
        let m = ModelId::BertBase.profile();
        let half = m.training.throughput(SmRate::from_percent(50.0));
        let full = m.training.throughput(SmRate::from_percent(100.0));
        assert!(full >= half);
        let sat = m.training.sat;
        let at_sat = m.training.throughput(sat);
        assert!((full - at_sat).abs() / full < 1e-9, "no gain beyond saturation");
    }

    #[test]
    fn max_batch_respects_slo_budget() {
        let m = ModelId::ResNet152.profile();
        let b = m.max_batch_within_slo(64).unwrap();
        assert!(m.inference_t_min(b) <= m.slo / 2);
        if b < 64 {
            assert!(m.inference_t_min(b + 1) > m.slo / 2);
        }
    }

    #[test]
    fn work_items_carry_profile_quantities() {
        let m = ModelId::Vgg19.profile();
        let item = m.inference_item(2, 42);
        assert_eq!(item.tag, 42);
        assert_eq!(item.ideal_duration(), m.inference_t_min(2));
        assert_eq!(item.kernel_blocks(), m.inference_blocks(2));
    }

    #[test]
    #[should_panic(expected = "batch size must be positive")]
    fn zero_batch_rejected() {
        ModelId::BertBase.profile().inference_t_min(0);
    }
}

//! The seven evaluated models and their calibrated profiles.

use std::fmt;

use dilu_gpu::{SmRate, GB, MB};
use dilu_sim::SimDuration;
use serde::{Deserialize, Serialize};

use crate::{ModelProfile, ParallelKind, TrainingProfile};

/// The models evaluated in the paper (§5.1): parameters range 0.2–12.6 GB.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord, Serialize, Deserialize)]
#[allow(missing_docs)]
pub enum ModelId {
    ResNet152,
    Vgg19,
    BertBase,
    RobertaLarge,
    Gpt2Large,
    Llama2_7b,
    ChatGlm3_6b,
}

impl ModelId {
    /// All models, in the paper's size order.
    pub const ALL: [ModelId; 7] = [
        ModelId::ResNet152,
        ModelId::Vgg19,
        ModelId::BertBase,
        ModelId::RobertaLarge,
        ModelId::Gpt2Large,
        ModelId::Llama2_7b,
        ModelId::ChatGlm3_6b,
    ];

    /// The four inference models profiled in Fig. 4 / Table 2 (a–d).
    pub const FIG4: [ModelId; 4] =
        [ModelId::ResNet152, ModelId::RobertaLarge, ModelId::Gpt2Large, ModelId::Llama2_7b];

    /// The stable kebab-case identifier used by scenario configs and
    /// registries (`ModelId::from_name` accepts it back).
    pub fn name(self) -> &'static str {
        match self {
            ModelId::ResNet152 => "resnet152",
            ModelId::Vgg19 => "vgg19",
            ModelId::BertBase => "bert-base",
            ModelId::RobertaLarge => "roberta-large",
            ModelId::Gpt2Large => "gpt2-large",
            ModelId::Llama2_7b => "llama2-7b",
            ModelId::ChatGlm3_6b => "chatglm3-6b",
        }
    }

    /// Looks a model up by name, accepting both the kebab-case identifier
    /// (`"bert-base"`) and the paper's display name (`"BERT-base"`),
    /// case-insensitively.
    pub fn from_name(name: &str) -> Option<ModelId> {
        let wanted = name.to_ascii_lowercase();
        ModelId::ALL
            .into_iter()
            .find(|m| m.name() == wanted || m.profile().name.to_ascii_lowercase() == wanted)
    }

    /// This model's calibrated analytic profile.
    pub fn profile(self) -> ModelProfile {
        match self {
            ModelId::ResNet152 => ModelProfile {
                name: "ResNet152",
                param_bytes: 245 * MB,
                infer_mem_bytes: 2 * GB,
                act_bytes_per_sample: 4 * MB,
                infer_t_fixed: SimDuration::from_millis_f64(4.0),
                infer_t_per_sample: SimDuration::from_millis_f64(2.5),
                infer_sat_base: SmRate::from_percent(25.0),
                infer_sat_per_doubling: SmRate::from_percent(5.0),
                slo: SimDuration::from_millis(100),
                output_tokens: 1,
                is_llm: false,
                training: TrainingProfile {
                    parallelism: ParallelKind::DataParallel,
                    t_compute: SimDuration::from_millis(80),
                    sat: SmRate::from_percent(60.0),
                    t_idle: SimDuration::from_millis(20),
                    mem_bytes: 7 * GB,
                    samples_per_iter: 64,
                    unit: "images/s",
                },
            },
            ModelId::Vgg19 => ModelProfile {
                name: "VGG19",
                param_bytes: 563 * MB,
                infer_mem_bytes: 5 * GB / 2,
                act_bytes_per_sample: 6 * MB,
                infer_t_fixed: SimDuration::from_millis_f64(3.0),
                infer_t_per_sample: SimDuration::from_millis_f64(2.0),
                infer_sat_base: SmRate::from_percent(30.0),
                infer_sat_per_doubling: SmRate::from_percent(5.0),
                slo: SimDuration::from_millis(80),
                output_tokens: 1,
                is_llm: false,
                training: TrainingProfile {
                    parallelism: ParallelKind::DataParallel,
                    t_compute: SimDuration::from_millis(95),
                    sat: SmRate::from_percent(60.0),
                    t_idle: SimDuration::from_millis(35),
                    mem_bytes: 9 * GB,
                    samples_per_iter: 64,
                    unit: "images/s",
                },
            },
            ModelId::BertBase => ModelProfile {
                name: "BERT-base",
                param_bytes: 440 * MB,
                infer_mem_bytes: 2 * GB,
                act_bytes_per_sample: MB,
                infer_t_fixed: SimDuration::from_millis_f64(2.5),
                infer_t_per_sample: SimDuration::from_millis_f64(1.25),
                infer_sat_base: SmRate::from_percent(20.0),
                infer_sat_per_doubling: SmRate::from_percent(5.0),
                slo: SimDuration::from_millis(50),
                output_tokens: 1,
                is_llm: false,
                training: TrainingProfile {
                    parallelism: ParallelKind::DataParallel,
                    t_compute: SimDuration::from_millis(60),
                    sat: SmRate::from_percent(50.0),
                    t_idle: SimDuration::from_millis(25),
                    mem_bytes: 6 * GB,
                    samples_per_iter: 8192,
                    unit: "tokens/s",
                },
            },
            ModelId::RobertaLarge => ModelProfile {
                name: "RoBERTa-large",
                param_bytes: 1_420 * MB,
                infer_mem_bytes: 4 * GB,
                act_bytes_per_sample: 2 * MB,
                // bs4 ≈ 26 ms: the paper's ~25 ms KLC per iteration.
                infer_t_fixed: SimDuration::from_millis_f64(8.0),
                infer_t_per_sample: SimDuration::from_millis_f64(4.5),
                // sat(4) = 50%: the paper's "2% boost doubling 50% → 100%".
                infer_sat_base: SmRate::from_percent(40.0),
                infer_sat_per_doubling: SmRate::from_percent(5.0),
                slo: SimDuration::from_millis(100),
                output_tokens: 1,
                is_llm: false,
                training: TrainingProfile {
                    parallelism: ParallelKind::DataParallel,
                    t_compute: SimDuration::from_millis(110),
                    sat: SmRate::from_percent(60.0),
                    t_idle: SimDuration::from_millis(45),
                    mem_bytes: 11 * GB,
                    samples_per_iter: 8192,
                    unit: "tokens/s",
                },
            },
            ModelId::Gpt2Large => ModelProfile {
                name: "GPT2-large",
                param_bytes: 3_100 * MB,
                infer_mem_bytes: 7 * GB,
                act_bytes_per_sample: 4 * MB,
                infer_t_fixed: SimDuration::from_millis_f64(15.0),
                infer_t_per_sample: SimDuration::from_millis_f64(8.0),
                infer_sat_base: SmRate::from_percent(45.0),
                infer_sat_per_doubling: SmRate::from_percent(6.0),
                slo: SimDuration::from_millis(200),
                output_tokens: 1,
                is_llm: false,
                training: TrainingProfile {
                    parallelism: ParallelKind::DataParallel,
                    // Observation-2: 4-worker DDP GPT2-large idles > 40%.
                    t_compute: SimDuration::from_millis(150),
                    sat: SmRate::from_percent(70.0),
                    t_idle: SimDuration::from_millis(110),
                    mem_bytes: 17 * GB,
                    samples_per_iter: 4096,
                    unit: "tokens/s",
                },
            },
            ModelId::Llama2_7b => ModelProfile {
                name: "LLaMA2-7B",
                param_bytes: 12_600 * MB,
                infer_mem_bytes: 15 * GB,
                act_bytes_per_sample: 8 * MB,
                // One request = prefill + 32 decoded tokens (~15 ms/token
                // saturated); latency is reported per output token (§5.1).
                infer_t_fixed: SimDuration::from_millis(350),
                infer_t_per_sample: SimDuration::from_millis(60),
                infer_sat_base: SmRate::from_percent(55.0),
                infer_sat_per_doubling: SmRate::from_percent(8.0),
                // 64 ms/token × 32 tokens.
                slo: SimDuration::from_millis(2_048),
                output_tokens: 32,
                is_llm: true,
                training: TrainingProfile {
                    parallelism: ParallelKind::Pipeline,
                    // Fig. 2(b): each pipeline worker idles ≈ 20%.
                    t_compute: SimDuration::from_millis(160),
                    sat: SmRate::from_percent(80.0),
                    t_idle: SimDuration::from_millis(40),
                    mem_bytes: 20 * GB,
                    samples_per_iter: 2048,
                    unit: "tokens/s",
                },
            },
            ModelId::ChatGlm3_6b => ModelProfile {
                name: "ChatGLM3-6B",
                param_bytes: 11_500 * MB,
                infer_mem_bytes: 14 * GB,
                act_bytes_per_sample: 8 * MB,
                infer_t_fixed: SimDuration::from_millis(320),
                infer_t_per_sample: SimDuration::from_millis(55),
                infer_sat_base: SmRate::from_percent(50.0),
                infer_sat_per_doubling: SmRate::from_percent(8.0),
                slo: SimDuration::from_millis(1_920),
                output_tokens: 32,
                is_llm: true,
                training: TrainingProfile {
                    parallelism: ParallelKind::Pipeline,
                    t_compute: SimDuration::from_millis(150),
                    sat: SmRate::from_percent(75.0),
                    t_idle: SimDuration::from_millis(38),
                    mem_bytes: 19 * GB,
                    samples_per_iter: 2048,
                    unit: "tokens/s",
                },
            },
        }
    }
}

impl fmt::Display for ModelId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.profile().name)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn names_round_trip() {
        for m in ModelId::ALL {
            assert_eq!(ModelId::from_name(m.name()), Some(m));
            assert_eq!(ModelId::from_name(m.profile().name), Some(m));
        }
        assert_eq!(ModelId::from_name("Bert-Base"), Some(ModelId::BertBase));
        assert_eq!(ModelId::from_name("no-such-model"), None);
    }

    #[test]
    fn parameter_sizes_span_paper_range() {
        let sizes: Vec<u64> = ModelId::ALL.iter().map(|m| m.profile().param_bytes).collect();
        let min = *sizes.iter().min().unwrap();
        let max = *sizes.iter().max().unwrap();
        assert!(min <= 250 * MB, "smallest ~0.2 GB, got {min}");
        assert!(max >= 12 * GB, "largest ~12.6 GB, got {max}");
    }

    #[test]
    fn llms_are_flagged_and_generate_tokens() {
        for id in [ModelId::Llama2_7b, ModelId::ChatGlm3_6b] {
            let p = id.profile();
            assert!(p.is_llm);
            assert!(p.output_tokens > 1);
            assert_eq!(p.training.parallelism, ParallelKind::Pipeline);
        }
        assert!(!ModelId::BertBase.profile().is_llm);
    }

    #[test]
    fn every_model_fits_an_a100() {
        for id in ModelId::ALL {
            let p = id.profile();
            assert!(p.infer_mem_bytes <= 40 * GB, "{id} inference footprint");
            assert!(p.training.mem_bytes <= 40 * GB, "{id} training footprint");
            assert!(p.infer_mem_bytes >= p.param_bytes, "{id} must hold its params");
        }
    }

    #[test]
    fn every_model_can_serve_batch_one_within_slo() {
        for id in ModelId::ALL {
            let p = id.profile();
            assert!(
                p.inference_t_min(1) <= p.slo / 2,
                "{id}: bs1 {} vs budget {}",
                p.inference_t_min(1),
                p.slo / 2
            );
        }
    }

    #[test]
    fn display_matches_paper_names() {
        assert_eq!(ModelId::RobertaLarge.to_string(), "RoBERTa-large");
        assert_eq!(ModelId::Llama2_7b.to_string(), "LLaMA2-7B");
    }

    #[test]
    fn fig4_models_are_the_profiled_four() {
        assert_eq!(ModelId::FIG4.len(), 4);
        assert_eq!(ModelId::FIG4[1], ModelId::RobertaLarge);
    }
}

//! `dilu` — the single front door of the Dilu reproduction.
//!
//! ```text
//! dilu run <scenario.toml|.json> [--json <out.json>]   simulate a config file
//! dilu experiment <name>... | all                      regenerate paper figures
//! dilu fuzz [--cases N] [--seed S] [--oracle name]     fuzz the composition space
//! dilu lint [--json <out.json>] [--rule <name>]        audit the workspace for nondeterminism
//! dilu list                                            components, presets, models
//! ```

#![forbid(unsafe_code)]

use std::path::{Path, PathBuf};
use std::process::ExitCode;

use dilu_core::experiments::{self, ExperimentCtx};
use dilu_core::table::Table;
use dilu_core::{Registry, ScenarioConfig, SystemKind};
use dilu_models::ModelId;

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let result = match args.first().map(String::as_str) {
        Some("run") => cmd_run(&args[1..]),
        Some("record") => cmd_record(&args[1..]),
        Some("replay") => cmd_replay(&args[1..]),
        Some("experiment") => cmd_experiment(&args[1..]),
        Some("fuzz") => cmd_fuzz(&args[1..]),
        Some("lint") => cmd_lint(&args[1..]),
        Some("list") => cmd_list(),
        Some("help") | Some("--help") | Some("-h") | None => {
            print!("{}", usage());
            Ok(())
        }
        Some(other) => Err(format!("unknown command `{other}`\n\n{}", usage())),
    };
    match result {
        Ok(()) => ExitCode::SUCCESS,
        Err(message) => {
            eprintln!("error: {message}");
            ExitCode::FAILURE
        }
    }
}

fn usage() -> String {
    "dilu — GPU resourcing-on-demand for serverless DL serving (reproduction)\n\
     \n\
     USAGE:\n\
     \x20 dilu run <scenario.toml|.json> [--json <out.json>] [--time-model <event-driven|dense-quantum>]\n\
     \x20          [--threads <n>] [--arrival-window <n>] [--profile] [--progress]\n\
     \x20     Build the scenario described by the config file and simulate it.\n\
     \x20     --time-model overrides the scenario's [sim] time_model (the\n\
     \x20     wake-on-work event engine by default; dense-quantum is the\n\
     \x20     legacy per-quantum stepper kept for comparison). --threads\n\
     \x20     overrides [sim] threads (node-plane step parallelism; the\n\
     \x20     report is byte-identical at any setting). --arrival-window\n\
     \x20     overrides [sim] arrival_window, the bounded per-function\n\
     \x20     pending-arrival buffer streamed from each arrival process\n\
     \x20     (0 materializes every schedule up front; the report is\n\
     \x20     byte-identical at any window). --profile turns on the\n\
     \x20     per-phase wall-clock profiler ([sim] profile): a table of\n\
     \x20     where the simulation wall clock went, also embedded under\n\
     \x20     \"profile\" in the --json output. --progress paints a\n\
     \x20     simulated-time progress line with a wall-clock ETA to stderr\n\
     \x20     (off by default; never written to stdout or --json files).\n\
     \x20 dilu record <scenario.toml|.json> [--log <out.dlog>] [--json <report.json>]\n\
     \x20     Simulate like `dilu run` while recording the typed event\n\
     \x20     stream, every arrival instant, and per-tick audit digests to\n\
     \x20     a versioned binary log (default: the scenario path with a\n\
     \x20     .dlog extension). --json dumps the full ClusterReport JSON.\n\
     \x20 dilu replay <log.dlog> [--until <secs>] [--json <report.json>]\n\
     \x20     Re-run a recorded log without re-sampling anything and verify\n\
     \x20     it: the replayed report must be byte-identical, and the first\n\
     \x20     diverging event or audit digest is localized otherwise (exit\n\
     \x20     non-zero). --until stops at an instant and dumps the full\n\
     \x20     cluster state audit instead of verifying.\n\
     \x20 dilu replay --diff <a.dlog> <b.dlog>\n\
     \x20     Structurally compare two logs and print the first divergent\n\
     \x20     event (instant, seq, payload) plus the audit delta around it.\n\
     \x20 dilu experiment <name>... | all [--threads <n>]\n\
     \x20     Regenerate registered paper experiments (JSON under target/experiments/).\n\
     \x20     --threads sets the default node-plane step parallelism (the\n\
     \x20     DILU_THREADS environment variable) for every experiment run.\n\
     \x20 dilu fuzz [--cases N] [--seed S] [--oracle <name>]... [--minimize] [--dump-dir <dir>]\n\
     \x20     Generate N scenarios across the whole composition space (seeded,\n\
     \x20     reproducible) and check every one against the invariant oracles:\n\
     \x20     differential (event-driven == dense-quantum), determinism,\n\
     \x20     conservation, capacity, record-replay (sampled on a third of\n\
     \x20     cases; always on under --oracle record-replay). Failing\n\
     \x20     scenarios are dumped as TOML (default target/fuzz/) with a\n\
     \x20     copy-pasteable repro line — record-replay failures also dump\n\
     \x20     the event log as .dlog for `dilu replay`; --minimize shrinks\n\
     \x20     them first. Exits non-zero on any violation.\n\
     \x20 dilu lint [--json <out.json>] [--rule <name>] [--root <dir>]\n\
     \x20     Audit the workspace sources for nondeterminism (unordered map\n\
     \x20     iteration, ambient time/RNG, arrival-order parallel merges,\n\
     \x20     order-sensitive float folds) per the root lint.toml. Findings\n\
     \x20     go to stderr and the exit code is non-zero; --json also dumps\n\
     \x20     them as JSON, --rule restricts to one rule, --root overrides\n\
     \x20     the workspace root (default: nearest ancestor with lint.toml).\n\
     \x20 dilu list\n\
     \x20     Show registered experiments, components, presets, models, and\n\
     \x20     lint rules.\n\
     \x20 dilu help\n\
     \x20     This message.\n"
        .to_string()
}

// ---------------------------------------------------------------------------
// dilu run
// ---------------------------------------------------------------------------

fn cmd_run(args: &[String]) -> Result<(), String> {
    let mut scenario_path: Option<PathBuf> = None;
    let mut json_out: Option<PathBuf> = None;
    let mut time_model: Option<String> = None;
    let mut threads: Option<u32> = None;
    let mut arrival_window: Option<u32> = None;
    let mut profile = false;
    let mut progress = false;
    let mut it = args.iter();
    while let Some(arg) = it.next() {
        match arg.as_str() {
            "--json" => {
                let path = it.next().ok_or("--json needs a path")?;
                json_out = Some(PathBuf::from(path));
            }
            "--time-model" => {
                let model = it.next().ok_or("--time-model needs a value")?;
                time_model = Some(model.clone());
            }
            "--threads" => {
                threads = Some(parse_threads(it.next())?);
            }
            "--arrival-window" => {
                let n = it.next().ok_or("--arrival-window needs a number")?;
                arrival_window = Some(
                    n.parse::<u32>()
                        .map_err(|_| format!("--arrival-window needs a number, got `{n}`"))?,
                );
            }
            "--profile" => profile = true,
            "--progress" => progress = true,
            flag if flag.starts_with("--") => {
                return Err(format!("unknown flag `{flag}` for `dilu run`"));
            }
            path => {
                if scenario_path.replace(PathBuf::from(path)).is_some() {
                    return Err("`dilu run` takes exactly one scenario file".into());
                }
            }
        }
    }
    let path =
        scenario_path.ok_or_else(|| format!("`dilu run` needs a scenario file\n\n{}", usage()))?;
    let options = RunOptions { time_model, threads, arrival_window, profile, progress };
    run_scenario(&path, json_out.as_deref(), &options)
}

/// Flag overrides for `dilu run`.
#[derive(Default)]
struct RunOptions {
    time_model: Option<String>,
    threads: Option<u32>,
    arrival_window: Option<u32>,
    profile: bool,
    progress: bool,
}

/// Parses a `--threads` operand: a positive integer.
fn parse_threads(value: Option<&String>) -> Result<u32, String> {
    let value = value.ok_or("--threads needs a number")?;
    match value.parse::<u32>() {
        Ok(n) if n >= 1 => Ok(n),
        _ => Err(format!("--threads needs a positive number, got `{value}`")),
    }
}

fn run_scenario(path: &Path, json_out: Option<&Path>, options: &RunOptions) -> Result<(), String> {
    let mut config = ScenarioConfig::load(path).map_err(|e| e.to_string())?;
    if let Some(model) = &options.time_model {
        // Validated with the rest of the [sim] section when the builder maps
        // the config (unknown values fail there, loudly).
        config.sim.get_or_insert_with(Default::default).time_model = Some(model.clone());
    }
    if let Some(threads) = options.threads {
        config.sim.get_or_insert_with(Default::default).threads = Some(threads);
    }
    if let Some(window) = options.arrival_window {
        config.sim.get_or_insert_with(Default::default).arrival_window = Some(window);
    }
    if options.profile {
        config.sim.get_or_insert_with(Default::default).profile = Some(true);
    }
    let name = config.name.clone().unwrap_or_else(|| {
        path.file_stem().map(|s| s.to_string_lossy().into_owned()).unwrap_or_default()
    });
    let registry = Registry::with_defaults();
    let scenario =
        config.into_builder(&registry).and_then(|b| b.build()).map_err(|e| e.to_string())?;

    println!("== scenario: {name} ==");
    println!(
        "cluster: {} GPUs | placement: {} | autoscaler: {} | share policy: {}",
        scenario.sim().spec().total_gpus(),
        scenario.sim().placement_name(),
        scenario.sim().autoscaler_name(),
        scenario.sim().share_policy_name(),
    );
    let horizon = scenario.horizon();
    println!("horizon: {horizon} (+drain)\n");

    let started = std::time::Instant::now();
    let (report, phase_profile) = if options.progress {
        run_with_progress(scenario, horizon)
    } else {
        scenario.run_profiled().map_err(|e| e.to_string())?
    };
    let elapsed = started.elapsed();

    if !report.inference.is_empty() {
        // Fetch columns only say something when a [network] plane priced
        // the cold starts; without one they would all read 0.
        let networked = report
            .inference
            .values()
            .any(|f| f.cold_starts.fetches() + f.cold_starts.cache_hits() > 0);
        let mut t = Table::new(if networked {
            vec![
                "function",
                "model",
                "arrived",
                "completed",
                "SVR",
                "p50",
                "p95",
                "cold starts",
                "fetch_ms",
                "cache hits",
                "resizes",
            ]
        } else {
            vec![
                "function",
                "model",
                "arrived",
                "completed",
                "SVR",
                "p50",
                "p95",
                "cold starts",
                "resizes",
            ]
        });
        for f in report.inference.values() {
            let mut row = vec![
                f.name.clone(),
                f.model.to_string(),
                f.arrived.to_string(),
                f.completed.to_string(),
                format!("{:.2}%", f.svr() * 100.0),
                f.p50_display().to_string(),
                f.p95_display().to_string(),
                f.cold_starts.count().to_string(),
            ];
            if networked {
                row.push(format!("{:.0}", f.cold_starts.mean_fetch_ms()));
                row.push(format!("{:.0}%", f.cold_starts.cache_hit_rate() * 100.0));
            }
            row.push(format!("{}↑ {}↓", f.resizes.grows(), f.resizes.shrinks()));
            t.row(row);
        }
        println!("{t}");
    }
    if !report.training.is_empty() {
        let mut t = Table::new(["job", "model", "workers", "iterations", "JCT", "throughput"]);
        for j in report.training.values() {
            t.row([
                j.name.clone(),
                j.model.to_string(),
                j.workers.to_string(),
                j.iterations_done.to_string(),
                j.jct().map(|d| d.to_string()).unwrap_or_else(|| "unfinished".into()),
                format!("{:.1} {}", j.throughput(report.horizon), j.unit),
            ]);
        }
        println!("{t}");
    }
    println!(
        "peak GPUs: {} | mean occupied: {:.1} | GPU time: {} | mean SVR: {:.2}%",
        report.peak_gpus,
        report.mean_occupied_gpus(),
        report.gpu_time,
        report.mean_svr() * 100.0,
    );
    println!("[simulated in {:.1}s]", elapsed.as_secs_f64());
    if let Some(profile) = &phase_profile {
        println!("\n== phase profile ==");
        print!("{}", profile.render());
    }

    if let Some(out) = json_out {
        let mut summary = report_summary(&report);
        if let Some(profile) = &phase_profile {
            if let serde::Value::Map(entries) = &mut summary {
                entries.push((
                    serde::Value::Str("profile".into()),
                    serde::Serialize::to_value(profile),
                ));
            }
        }
        dilu_core::table::write_json_at(out, &summary);
        println!("[json: {}]", out.display());
    }
    Ok(())
}

/// Runs the scenario in ~200 simulated-time slices, painting a
/// simulated-time progress line (percent done, simulated seconds, wall
/// ETA) to **stderr** after each slice. Slicing `run_until` lands on the
/// exact same event stream as one call to the full horizon, so the
/// report stays byte-identical to a plain run — and stderr keeps the
/// ticker out of piped stdout and `--json` files.
fn run_with_progress(
    scenario: dilu_core::Scenario,
    horizon: dilu_sim::SimDuration,
) -> (dilu_cluster::ClusterReport, Option<dilu_metrics::PhaseProfile>) {
    use dilu_sim::SimTime;
    let end = SimTime::ZERO + horizon + scenario.drain();
    let total_us = end.as_micros();
    let mut sim = scenario.into_sim();
    let started = std::time::Instant::now();
    const SLICES: u64 = 200;
    for slice in 1..=SLICES {
        let t = SimTime::from_micros(total_us / SLICES * slice);
        sim.run_until(if slice == SLICES { end } else { t });
        let done = slice as f64 / SLICES as f64;
        let elapsed = started.elapsed().as_secs_f64();
        let eta = elapsed * (1.0 - done) / done;
        eprint!(
            "\r[progress] {:5.1}% | t={:.0}s/{:.0}s | eta {:.0}s   ",
            done * 100.0,
            (total_us / SLICES * slice) as f64 / 1e6,
            total_us as f64 / 1e6,
            eta,
        );
    }
    eprintln!();
    let profile = sim.phase_profile();
    (sim.into_report(), profile)
}

/// A JSON-friendly digest of a [`dilu_cluster::ClusterReport`].
fn report_summary(report: &dilu_cluster::ClusterReport) -> serde::Value {
    use serde::Value;
    let inference: Vec<Value> = report
        .inference
        .values()
        .map(|f| {
            Value::Map(vec![
                (Value::Str("name".into()), Value::Str(f.name.clone())),
                (Value::Str("model".into()), Value::Str(f.model.name().into())),
                (Value::Str("arrived".into()), Value::UInt(f.arrived)),
                (Value::Str("completed".into()), Value::UInt(f.completed)),
                (Value::Str("svr".into()), Value::Float(f.svr())),
                (Value::Str("p95_us".into()), Value::UInt(f.p95_display().as_micros())),
                (Value::Str("cold_starts".into()), Value::UInt(f.cold_starts.count())),
                (Value::Str("cold_fetches".into()), Value::UInt(f.cold_starts.fetches())),
                (Value::Str("cache_hits".into()), Value::UInt(f.cold_starts.cache_hits())),
                (Value::Str("cache_hit_rate".into()), Value::Float(f.cold_starts.cache_hit_rate())),
                (Value::Str("mean_fetch_ms".into()), Value::Float(f.cold_starts.mean_fetch_ms())),
                (Value::Str("resizes".into()), Value::UInt(f.resizes.total())),
            ])
        })
        .collect();
    let training: Vec<Value> = report
        .training
        .values()
        .map(|j| {
            Value::Map(vec![
                (Value::Str("name".into()), Value::Str(j.name.clone())),
                (Value::Str("model".into()), Value::Str(j.model.name().into())),
                (Value::Str("iterations_done".into()), Value::UInt(j.iterations_done)),
                (
                    Value::Str("jct_us".into()),
                    j.jct().map_or(Value::Unit, |d| Value::UInt(d.as_micros())),
                ),
                (Value::Str("throughput".into()), Value::Float(j.throughput(report.horizon))),
            ])
        })
        .collect();
    Value::Map(vec![
        (Value::Str("peak_gpus".into()), Value::UInt(u64::from(report.peak_gpus))),
        (Value::Str("mean_svr".into()), Value::Float(report.mean_svr())),
        (Value::Str("mean_occupied_gpus".into()), Value::Float(report.mean_occupied_gpus())),
        (Value::Str("inference".into()), Value::Seq(inference)),
        (Value::Str("training".into()), Value::Seq(training)),
    ])
}

// ---------------------------------------------------------------------------
// dilu record / dilu replay
// ---------------------------------------------------------------------------

fn cmd_record(args: &[String]) -> Result<(), String> {
    let mut scenario_path: Option<PathBuf> = None;
    let mut log_out: Option<PathBuf> = None;
    let mut json_out: Option<PathBuf> = None;
    let mut it = args.iter();
    while let Some(arg) = it.next() {
        match arg.as_str() {
            "--log" => {
                let path = it.next().ok_or("--log needs a path")?;
                log_out = Some(PathBuf::from(path));
            }
            "--json" => {
                let path = it.next().ok_or("--json needs a path")?;
                json_out = Some(PathBuf::from(path));
            }
            flag if flag.starts_with("--") => {
                return Err(format!("unknown flag `{flag}` for `dilu record`"));
            }
            path => {
                if scenario_path.replace(PathBuf::from(path)).is_some() {
                    return Err("`dilu record` takes exactly one scenario file".into());
                }
            }
        }
    }
    let path = scenario_path
        .ok_or_else(|| format!("`dilu record` needs a scenario file\n\n{}", usage()))?;
    let config = ScenarioConfig::load(&path).map_err(|e| e.to_string())?;
    let name = config.name.clone().unwrap_or_else(|| {
        path.file_stem().map(|s| s.to_string_lossy().into_owned()).unwrap_or_default()
    });
    let registry = Registry::with_defaults();
    let log = dilu_replay::record(&config, &registry).map_err(|e| e.to_string())?;
    let log_path = log_out.unwrap_or_else(|| path.with_extension("dlog"));
    let bytes = log.to_bytes();
    std::fs::write(&log_path, &bytes)
        .map_err(|e| format!("cannot write {}: {e}", log_path.display()))?;
    let arrivals: usize = log.arrivals.iter().map(|(_, t)| t.len()).sum();
    println!("== dilu record: {name} ==");
    println!(
        "{} events | {} audit digests | {} arrival instants across {} functions",
        log.events.len(),
        log.audits.len(),
        arrivals,
        log.arrivals.len(),
    );
    println!("[log: {} ({} bytes)]", log_path.display(), bytes.len());
    if let Some(out) = json_out {
        std::fs::write(&out, log.report_json.as_bytes())
            .map_err(|e| format!("cannot write {}: {e}", out.display()))?;
        println!("[json: {}]", out.display());
    }
    Ok(())
}

fn load_log(path: &Path) -> Result<dilu_replay::EventLog, String> {
    let bytes = std::fs::read(path).map_err(|e| format!("cannot read {}: {e}", path.display()))?;
    dilu_replay::EventLog::from_bytes(&bytes).map_err(|e| format!("{}: {e}", path.display()))
}

fn cmd_replay(args: &[String]) -> Result<(), String> {
    let mut log_path: Option<PathBuf> = None;
    let mut diff_paths: Option<(PathBuf, PathBuf)> = None;
    let mut until: Option<f64> = None;
    let mut json_out: Option<PathBuf> = None;
    let mut it = args.iter();
    while let Some(arg) = it.next() {
        match arg.as_str() {
            "--diff" => {
                let a = it.next().ok_or("--diff needs two log paths")?;
                let b = it.next().ok_or("--diff needs two log paths")?;
                diff_paths = Some((PathBuf::from(a), PathBuf::from(b)));
            }
            "--until" => {
                let t = it.next().ok_or("--until needs a time in seconds")?;
                until = Some(
                    t.parse::<f64>()
                        .ok()
                        .filter(|t| t.is_finite() && *t >= 0.0)
                        .ok_or_else(|| format!("--until needs seconds >= 0, got `{t}`"))?,
                );
            }
            "--json" => {
                let path = it.next().ok_or("--json needs a path")?;
                json_out = Some(PathBuf::from(path));
            }
            flag if flag.starts_with("--") => {
                return Err(format!("unknown flag `{flag}` for `dilu replay`"));
            }
            path => {
                if log_path.replace(PathBuf::from(path)).is_some() {
                    return Err("`dilu replay` takes exactly one log file".into());
                }
            }
        }
    }
    if let Some((a_path, b_path)) = diff_paths {
        if log_path.is_some() || until.is_some() || json_out.is_some() {
            return Err(
                "`dilu replay --diff` takes exactly two log paths and no other flags".into()
            );
        }
        let a = load_log(&a_path)?;
        let b = load_log(&b_path)?;
        println!("== dilu replay --diff: {} vs {} ==", a_path.display(), b_path.display());
        print!("{}", dilu_replay::diff(&a, &b).render());
        return Ok(());
    }
    let path = log_path.ok_or_else(|| format!("`dilu replay` needs a log file\n\n{}", usage()))?;
    let log = load_log(&path)?;
    let registry = Registry::with_defaults();
    if let Some(secs) = until {
        let at = dilu_sim::SimTime::from_micros((secs * 1e6).round() as u64);
        let snapshot = dilu_replay::replay_until(&log, &registry, at).map_err(|e| e.to_string())?;
        println!("== dilu replay: {} until {secs}s ==", path.display());
        println!("{snapshot:#?}");
        return Ok(());
    }
    let verdict = dilu_replay::replay(&log, &registry).map_err(|e| e.to_string())?;
    println!("== dilu replay: {} ==", path.display());
    println!("replayed {} of {} recorded events", verdict.replayed_events, verdict.logged_events);
    if let Some(out) = &json_out {
        std::fs::write(out, verdict.report_json.as_bytes())
            .map_err(|e| format!("cannot write {}: {e}", out.display()))?;
        println!("[json: {}]", out.display());
    }
    if verdict.is_exact() {
        println!("replay verified: event stream, audit digests, and report byte-identical");
        return Ok(());
    }
    if let Some(d) = &verdict.event_divergence {
        eprintln!("{d}");
    }
    if let Some(d) = &verdict.audit_divergence {
        eprintln!("{d}");
    }
    if !verdict.report_matches {
        eprintln!("replayed ClusterReport JSON differs from the recorded report");
    }
    Err("replay diverged from the recording".into())
}

// ---------------------------------------------------------------------------
// dilu fuzz
// ---------------------------------------------------------------------------

fn cmd_fuzz(args: &[String]) -> Result<(), String> {
    use dilu_harness::{FuzzOptions, Harness};

    let mut options =
        FuzzOptions { dump_dir: Some(PathBuf::from("target/fuzz")), ..FuzzOptions::default() };
    let mut it = args.iter();
    while let Some(arg) = it.next() {
        match arg.as_str() {
            "--cases" => {
                let n = it.next().ok_or("--cases needs a number")?;
                options.cases =
                    n.parse().map_err(|_| format!("--cases needs a number, got `{n}`"))?;
            }
            "--seed" => {
                let s = it.next().ok_or("--seed needs a number")?;
                options.seed =
                    s.parse().map_err(|_| format!("--seed needs a number, got `{s}`"))?;
            }
            "--oracle" => {
                let name = it.next().ok_or("--oracle needs a name")?;
                options.oracles.push(name.clone());
            }
            "--minimize" => options.minimize = true,
            "--dump-dir" => {
                let dir = it.next().ok_or("--dump-dir needs a path")?;
                options.dump_dir = Some(PathBuf::from(dir));
            }
            other => return Err(format!("unknown flag `{other}` for `dilu fuzz`\n\n{}", usage())),
        }
    }
    let harness = Harness::new();
    println!("== dilu fuzz: {} cases from seed {} ==", options.cases, options.seed);
    println!(
        "oracles: {}\n",
        if options.oracles.is_empty() {
            harness.oracle_names().join(", ")
        } else {
            options.oracles.join(", ")
        }
    );
    let started = std::time::Instant::now();
    let report = harness.run_with_progress(&options, |line| println!("{line}"))?;
    println!(
        "\n{} cases | {} checks passed | {} skipped (infeasible compositions) | {} violations \
         [{:.1}s]",
        report.cases,
        report.passed,
        report.skipped,
        report.failures.len(),
        started.elapsed().as_secs_f64(),
    );
    if report.clean() {
        return Ok(());
    }
    for failure in &report.failures {
        println!("\n--- {} violated (case seed {}) ---", failure.oracle, failure.case_seed);
        println!("{}", failure.detail);
        if failure.minimized.is_some() {
            println!("[shrunk to a minimal reproducer]");
        }
        if let Some(dump) = &failure.dump {
            println!("scenario: {}  (try `dilu run {}`)", dump.display(), dump.display());
        }
        if let Some(artifact) = &failure.artifact {
            println!(
                "event log: {}  (try `dilu replay {}`)",
                artifact.display(),
                artifact.display()
            );
        }
        println!(
            "repro: dilu fuzz --cases 1 --seed {} --oracle {} --minimize",
            failure.case_seed, failure.oracle
        );
    }
    Err(format!("{} oracle violation(s)", report.failures.len()))
}

// ---------------------------------------------------------------------------
// dilu lint
// ---------------------------------------------------------------------------

fn cmd_lint(args: &[String]) -> Result<(), String> {
    let mut json_out: Option<PathBuf> = None;
    let mut rule: Option<String> = None;
    let mut root: Option<PathBuf> = None;
    let mut it = args.iter();
    while let Some(arg) = it.next() {
        match arg.as_str() {
            "--json" => {
                let path = it.next().ok_or("--json needs a path")?;
                json_out = Some(PathBuf::from(path));
            }
            "--rule" => {
                let name = it.next().ok_or("--rule needs a rule name")?;
                rule = Some(name.clone());
            }
            "--root" => {
                let dir = it.next().ok_or("--root needs a directory")?;
                root = Some(PathBuf::from(dir));
            }
            other => return Err(format!("unknown flag `{other}` for `dilu lint`\n\n{}", usage())),
        }
    }
    if let Some(name) = &rule {
        if dilu_lint::find_rule(name).is_none() {
            return Err(format!(
                "unknown lint rule `{name}` (known: {})",
                dilu_lint::rule_names().join(", ")
            ));
        }
    }
    let root = match root {
        Some(dir) => dir,
        None => find_lint_root()?,
    };
    let config = dilu_lint::Config::load(&root.join("lint.toml"))?;
    let report = dilu_lint::lint_workspace(&root, &config, rule.as_deref())?;
    if let Some(out) = json_out.as_deref() {
        dilu_core::table::write_json_at(out, &report.to_json());
        println!("[json: {}]", out.display());
    }
    println!(
        "== dilu lint: {} file(s) audited, {} reasoned suppression(s) ==",
        report.files_checked,
        report.suppressed.len()
    );
    if report.clean() {
        println!("clean: no determinism findings");
        return Ok(());
    }
    // Findings go to stderr so CI logs and scripts can separate them from
    // the run banner.
    eprint!("{}", report.render_human());
    Err(format!("{} determinism finding(s)", report.findings.len()))
}

/// The workspace root: the nearest ancestor of the current directory
/// holding a `lint.toml`.
fn find_lint_root() -> Result<PathBuf, String> {
    let start = std::env::current_dir().map_err(|e| format!("cannot read current dir: {e}"))?;
    let mut dir = start.as_path();
    loop {
        if dir.join("lint.toml").is_file() {
            return Ok(dir.to_path_buf());
        }
        match dir.parent() {
            Some(parent) => dir = parent,
            None => {
                return Err(format!(
                    "no lint.toml found in {} or any ancestor (pass --root <dir>)",
                    start.display()
                ));
            }
        }
    }
}

// ---------------------------------------------------------------------------
// dilu experiment
// ---------------------------------------------------------------------------

fn cmd_experiment(args: &[String]) -> Result<(), String> {
    // Experiments compose their scenarios internally, so `--threads` flows
    // through the `DILU_THREADS` default that `SimConfig` reads — every
    // report stays byte-identical; only the wall clock changes. The env
    // write happens here on the main thread, before any simulation (and
    // therefore any step-pool thread) exists, which is the one window
    // where mutating the environment is race-free.
    let mut names_args: Vec<&String> = Vec::new();
    let mut it = args.iter();
    while let Some(arg) = it.next() {
        if arg == "--threads" {
            let threads = parse_threads(it.next())?;
            std::env::set_var("DILU_THREADS", threads.to_string());
        } else {
            names_args.push(arg);
        }
    }
    if names_args.is_empty() {
        return Err(format!(
            "`dilu experiment` needs at least one name (or `all`); known: {}",
            experiment_names().join(", ")
        ));
    }
    let names: Vec<&str> = if names_args.len() == 1 && names_args[0] == "all" {
        experiments::all().iter().map(|e| e.name()).collect()
    } else {
        names_args.iter().map(|s| s.as_str()).collect()
    };
    // Resolve everything before running anything, so typos fail fast.
    let mut todo = Vec::new();
    for name in names {
        let experiment = experiments::find(name).ok_or_else(|| {
            format!("unknown experiment `{name}` (known: {})", experiment_names().join(", "))
        })?;
        todo.push(experiment);
    }
    let ctx = ExperimentCtx::with_default_json_dir();
    for experiment in todo {
        println!("== {}: {} ==", experiment.name(), experiment.title());
        let started = std::time::Instant::now();
        let output = experiment.run(&ctx);
        println!("{}", output.rendered);
        if let Some(path) = &output.json_path {
            println!("[json: {}]", path.display());
        }
        println!("[{} completed in {:.1}s]\n", experiment.name(), started.elapsed().as_secs_f64());
    }
    Ok(())
}

fn experiment_names() -> Vec<&'static str> {
    experiments::all().iter().map(|e| e.name()).collect()
}

// ---------------------------------------------------------------------------
// dilu list
// ---------------------------------------------------------------------------

fn cmd_list() -> Result<(), String> {
    let registry = Registry::with_defaults();
    println!("presets (SystemKind):");
    for kind in SystemKind::ALL {
        println!("  {:12} {}", kind.name(), kind.label());
    }
    println!("\nplacements:        {}", registry.placement_names().join(", "));
    println!("autoscalers:       {}", registry.autoscaler_names().join(", "));
    println!("controllers (2D):  {}", registry.controller_names().join(", "));
    println!("share policies:    {}", registry.share_policy_names().join(", "));
    println!("arrival processes: {}", dilu_workload::PROCESS_NAMES.join(", "));
    println!("fuzz oracles:      {}", dilu_harness::Harness::new().oracle_names().join(", "));
    println!("lint rules:        {}", dilu_lint::rule_names().join(", "));
    println!(
        "models:            {}",
        ModelId::ALL.iter().map(|m| m.name()).collect::<Vec<_>>().join(", ")
    );
    println!("\nexperiments:");
    for e in experiments::all() {
        println!("  {:8} {}", e.name(), e.title());
    }
    Ok(())
}

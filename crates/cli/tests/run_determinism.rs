//! End-to-end determinism through the binary: `dilu run` on the same
//! scenario twice must emit byte-identical JSON digests, and the
//! `--time-model` override must select the legacy stepper without changing
//! the outcome.

use std::path::PathBuf;
use std::process::Command;

fn scratch(name: &str) -> PathBuf {
    let dir = PathBuf::from(env!("CARGO_TARGET_TMPDIR"));
    std::fs::create_dir_all(&dir).expect("tmpdir exists");
    dir.join(name)
}

fn write_scenario() -> PathBuf {
    let path = scratch("determinism-scenario.toml");
    std::fs::write(
        &path,
        r#"
name = "cli-determinism"

[cluster]
nodes = 1
gpus_per_node = 2

[system]
preset = "dilu"

[system.controller]
name = "co-scale"

[run]
horizon_secs = 10
seed = 99

[[functions]]
model = "bert-base"
arrivals = { process = "trace", shape = "bursty", rate = 30.0, scale = 4.0 }
"#,
    )
    .expect("scenario written");
    path
}

fn run_dilu(args: &[&str]) -> String {
    let out =
        Command::new(env!("CARGO_BIN_EXE_dilu")).args(args).output().expect("dilu binary runs");
    assert!(
        out.status.success(),
        "dilu {args:?} failed:\n{}",
        String::from_utf8_lossy(&out.stderr)
    );
    String::from_utf8(out.stdout).expect("utf8 output")
}

#[test]
fn dilu_run_is_byte_deterministic() {
    let scenario = write_scenario();
    let (out_a, out_b) = (scratch("run-a.json"), scratch("run-b.json"));
    for out in [&out_a, &out_b] {
        run_dilu(&["run", scenario.to_str().unwrap(), "--json", out.to_str().unwrap()]);
    }
    let a = std::fs::read(&out_a).expect("first digest");
    let b = std::fs::read(&out_b).expect("second digest");
    assert!(!a.is_empty());
    assert_eq!(a, b, "`dilu run` must be byte-deterministic for a seeded scenario");
}

#[test]
fn time_model_flag_selects_the_stepper_without_changing_results() {
    let scenario = write_scenario();
    let (out_event, out_dense) = (scratch("run-event.json"), scratch("run-dense.json"));
    run_dilu(&["run", scenario.to_str().unwrap(), "--json", out_event.to_str().unwrap()]);
    run_dilu(&[
        "run",
        scenario.to_str().unwrap(),
        "--time-model",
        "dense-quantum",
        "--json",
        out_dense.to_str().unwrap(),
    ]);
    let event = std::fs::read(&out_event).expect("event digest");
    let dense = std::fs::read(&out_dense).expect("dense digest");
    assert_eq!(event, dense, "the two time models must agree on the report digest");
}

#[test]
fn unknown_time_model_fails_loudly() {
    let scenario = write_scenario();
    let out = Command::new(env!("CARGO_BIN_EXE_dilu"))
        .args(["run", scenario.to_str().unwrap(), "--time-model", "warp-speed"])
        .output()
        .expect("dilu binary runs");
    assert!(!out.status.success(), "bogus time model must be rejected");
    let stderr = String::from_utf8_lossy(&out.stderr);
    assert!(stderr.contains("warp-speed"), "error names the bad value: {stderr}");
}

//! CLI error paths: every misconfiguration must exit non-zero with an
//! actionable message on stderr — naming the offending value and, where a
//! registry is involved, the accepted alternatives.

use std::path::PathBuf;
use std::process::{Command, Output};

fn scratch(name: &str) -> PathBuf {
    let dir = PathBuf::from(env!("CARGO_TARGET_TMPDIR"));
    std::fs::create_dir_all(&dir).expect("tmpdir exists");
    dir.join(name)
}

fn write_scenario(name: &str, body: &str) -> PathBuf {
    let path = scratch(name);
    std::fs::write(&path, body).expect("scenario written");
    path
}

fn run_dilu(args: &[&str]) -> Output {
    Command::new(env!("CARGO_BIN_EXE_dilu")).args(args).output().expect("dilu binary runs")
}

/// Runs `dilu` expecting failure; returns stderr.
fn expect_failure(args: &[&str]) -> String {
    let out = run_dilu(args);
    assert!(
        !out.status.success(),
        "dilu {args:?} must exit non-zero\nstdout:\n{}",
        String::from_utf8_lossy(&out.stdout)
    );
    let stderr = String::from_utf8_lossy(&out.stderr).into_owned();
    assert!(stderr.contains("error:"), "stderr must carry the error banner: {stderr}");
    stderr
}

#[test]
fn malformed_toml_names_the_file_and_fails() {
    let path = write_scenario(
        "malformed.toml",
        "[system\npreset = \"dilu\"\n", // unterminated table header
    );
    let stderr = expect_failure(&["run", path.to_str().unwrap()]);
    assert!(stderr.contains("malformed.toml"), "the failing file must be named: {stderr}");
}

#[test]
fn unknown_placement_name_lists_the_known_ones() {
    let path = write_scenario(
        "unknown-placement.toml",
        r#"
[system.placement]
name = "no-such-placement"

[[functions]]
model = "bert-base"
arrivals = { process = "poisson", rate = 5.0 }
"#,
    );
    let stderr = expect_failure(&["run", path.to_str().unwrap()]);
    assert!(stderr.contains("no-such-placement"), "{stderr}");
    assert!(
        stderr.contains("dilu") && stderr.contains("exclusive"),
        "the known registry names must be listed: {stderr}"
    );
}

#[test]
fn unknown_model_lists_the_zoo() {
    let path = write_scenario(
        "unknown-model.toml",
        r#"
[system]
preset = "dilu"

[[functions]]
model = "bert-gigantic"
arrivals = { process = "poisson", rate = 5.0 }
"#,
    );
    let stderr = expect_failure(&["run", path.to_str().unwrap()]);
    assert!(stderr.contains("bert-gigantic") && stderr.contains("bert-base"), "{stderr}");
}

#[test]
fn controller_and_autoscaler_conflict_is_actionable() {
    let path = write_scenario(
        "conflict.toml",
        r#"
[system]
preset = "dilu"

[system.autoscaler]
name = "lazy"

[system.controller]
name = "co-scale"

[[functions]]
model = "bert-base"
arrivals = { process = "poisson", rate = 5.0 }
"#,
    );
    let stderr = expect_failure(&["run", path.to_str().unwrap()]);
    assert!(
        stderr.contains("same slot") && stderr.contains("keep one"),
        "the conflict message must say what to do: {stderr}"
    );
}

#[test]
fn missing_scenario_file_is_reported() {
    let stderr = expect_failure(&["run", "/definitely/not/here.toml"]);
    assert!(stderr.contains("not/here.toml"), "{stderr}");
}

#[test]
fn unknown_fuzz_oracle_lists_the_suite() {
    let stderr = expect_failure(&["fuzz", "--cases", "1", "--oracle", "astrology"]);
    assert!(stderr.contains("astrology"), "{stderr}");
    assert!(
        stderr.contains("differential") && stderr.contains("capacity"),
        "the known oracles must be listed: {stderr}"
    );
}

#[test]
fn fuzz_rejects_malformed_flags() {
    let stderr = expect_failure(&["fuzz", "--cases", "lots"]);
    assert!(stderr.contains("lots"), "{stderr}");
    let stderr = expect_failure(&["fuzz", "--frobnicate"]);
    assert!(stderr.contains("frobnicate"), "{stderr}");
}

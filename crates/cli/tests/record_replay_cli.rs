//! `dilu record` / `dilu replay` through the binary: a recorded run
//! replays byte-identically (the acceptance oracle CI enforces), the
//! `--until` time-travel dump renders a cluster state, and `--diff`
//! localizes the first divergent event between two differently-seeded
//! logs.

use std::path::PathBuf;
use std::process::Command;

fn scratch(name: &str) -> PathBuf {
    let dir = PathBuf::from(env!("CARGO_TARGET_TMPDIR"));
    std::fs::create_dir_all(&dir).expect("tmpdir exists");
    dir.join(name)
}

fn write_scenario(name: &str, seed: u64) -> PathBuf {
    let path = scratch(name);
    std::fs::write(
        &path,
        format!(
            r#"
name = "cli-record-replay"

[cluster]
nodes = 1
gpus_per_node = 2

[system]
preset = "dilu"

[system.controller]
name = "co-scale"

[run]
horizon_secs = 8
seed = {seed}

[[functions]]
model = "bert-base"
arrivals = {{ process = "trace", shape = "bursty", rate = 25.0, scale = 4.0 }}
"#
        ),
    )
    .expect("scenario written");
    path
}

fn run_dilu(args: &[&str]) -> String {
    let out =
        Command::new(env!("CARGO_BIN_EXE_dilu")).args(args).output().expect("dilu binary runs");
    assert!(
        out.status.success(),
        "dilu {args:?} failed:\n{}",
        String::from_utf8_lossy(&out.stderr)
    );
    String::from_utf8(out.stdout).expect("utf8 output")
}

#[test]
fn record_then_replay_is_byte_identical_through_the_binary() {
    let scenario = write_scenario("rr-scenario.toml", 7);
    let log = scratch("rr.dlog");
    let (rec_json, rep_json) = (scratch("rr-rec.json"), scratch("rr-rep.json"));
    run_dilu(&[
        "record",
        scenario.to_str().unwrap(),
        "--log",
        log.to_str().unwrap(),
        "--json",
        rec_json.to_str().unwrap(),
    ]);
    let stdout = run_dilu(&["replay", log.to_str().unwrap(), "--json", rep_json.to_str().unwrap()]);
    assert!(stdout.contains("replay verified"), "verdict missing:\n{stdout}");
    let recorded = std::fs::read(&rec_json).expect("recorded report");
    let replayed = std::fs::read(&rep_json).expect("replayed report");
    assert!(!recorded.is_empty());
    assert_eq!(recorded, replayed, "record → replay must reproduce the report byte-for-byte");
}

#[test]
fn replay_until_dumps_a_time_travel_snapshot() {
    let scenario = write_scenario("rr-until-scenario.toml", 7);
    let log = scratch("rr-until.dlog");
    run_dilu(&["record", scenario.to_str().unwrap(), "--log", log.to_str().unwrap()]);
    let stdout = run_dilu(&["replay", log.to_str().unwrap(), "--until", "2.5"]);
    assert!(stdout.contains("AuditSnapshot"), "snapshot dump missing:\n{stdout}");
    assert!(stdout.contains("functions"), "snapshot lists functions:\n{stdout}");
}

#[test]
fn diff_localizes_the_first_divergent_event() {
    let a = write_scenario("rr-diff-a.toml", 7);
    let b = write_scenario("rr-diff-b.toml", 13);
    let (log_a, log_b) = (scratch("rr-a.dlog"), scratch("rr-b.dlog"));
    run_dilu(&["record", a.to_str().unwrap(), "--log", log_a.to_str().unwrap()]);
    run_dilu(&["record", b.to_str().unwrap(), "--log", log_b.to_str().unwrap()]);
    let stdout = run_dilu(&["replay", "--diff", log_a.to_str().unwrap(), log_b.to_str().unwrap()]);
    assert!(stdout.contains("first divergent event"), "divergence not localized:\n{stdout}");
    assert!(stdout.contains("seq="), "divergent event carries its seq:\n{stdout}");
    // Same log against itself: equivalent.
    let clean = run_dilu(&["replay", "--diff", log_a.to_str().unwrap(), log_a.to_str().unwrap()]);
    assert!(clean.contains("equivalent"), "self-diff must be clean:\n{clean}");
}

#[test]
fn stale_or_corrupt_logs_fail_loudly() {
    let scenario = write_scenario("rr-corrupt-scenario.toml", 7);
    let log = scratch("rr-corrupt.dlog");
    run_dilu(&["record", scenario.to_str().unwrap(), "--log", log.to_str().unwrap()]);
    // Flip a byte inside the embedded config JSON: the header hash check
    // must reject the log before any replay starts.
    let mut bytes = std::fs::read(&log).expect("log written");
    bytes[25] ^= 0xff;
    std::fs::write(&log, &bytes).expect("corrupted log written");
    let out = Command::new(env!("CARGO_BIN_EXE_dilu"))
        .args(["replay", log.to_str().unwrap()])
        .output()
        .expect("dilu binary runs");
    assert!(!out.status.success(), "corrupt log must be rejected");
    let stderr = String::from_utf8_lossy(&out.stderr);
    assert!(
        stderr.contains("hash") || stderr.contains("corrupt") || stderr.contains("truncated"),
        "error names the log problem: {stderr}"
    );
}

//! `dilu run --progress` and `--arrival-window`, end to end: the progress
//! ticker is stderr-only observability (stdout and `--json` files stay
//! byte-identical to a plain run), and any arrival-window override —
//! including `0`, the materialize-everything comparison path — leaves the
//! report bytes untouched.

use std::path::PathBuf;
use std::process::{Command, Output};

fn scratch(name: &str) -> PathBuf {
    let dir = PathBuf::from(env!("CARGO_TARGET_TMPDIR"));
    std::fs::create_dir_all(&dir).expect("tmpdir exists");
    dir.join(name)
}

fn write_scenario() -> PathBuf {
    let path = scratch("progress-scenario.toml");
    std::fs::write(
        &path,
        r#"
name = "cli-progress"

[cluster]
nodes = 1
gpus_per_node = 2

[system]
preset = "dilu"

[system.controller]
name = "co-scale"

[run]
horizon_secs = 20
seed = 17

[[functions]]
model = "bert-base"
arrivals = { process = "synth", rate = 25.0, amp = 0.5, period = 5.0 }

[[functions]]
model = "roberta-large"
arrivals = { process = "poisson", rate = 10.0 }
"#,
    )
    .expect("scenario written");
    path
}

fn run_dilu(args: &[&str]) -> Output {
    let out =
        Command::new(env!("CARGO_BIN_EXE_dilu")).args(args).output().expect("dilu binary runs");
    assert!(
        out.status.success(),
        "dilu {args:?} failed:\n{}",
        String::from_utf8_lossy(&out.stderr)
    );
    out
}

#[test]
fn progress_is_stderr_only_and_does_not_change_the_report() {
    let scenario = write_scenario();
    let (plain_json, progress_json) = (scratch("plain.json"), scratch("progress.json"));
    let plain =
        run_dilu(&["run", scenario.to_str().unwrap(), "--json", plain_json.to_str().unwrap()]);
    let progress = run_dilu(&[
        "run",
        scenario.to_str().unwrap(),
        "--progress",
        "--json",
        progress_json.to_str().unwrap(),
    ]);

    let stderr = String::from_utf8_lossy(&progress.stderr);
    assert!(stderr.contains("[progress]"), "the ticker goes to stderr: {stderr}");
    assert!(stderr.contains("eta"), "the ticker carries a wall-clock ETA: {stderr}");
    let stdout = String::from_utf8_lossy(&progress.stdout);
    assert!(!stdout.contains("[progress]"), "stdout must stay ticker-free: {stdout}");
    assert!(
        !String::from_utf8_lossy(&plain.stderr).contains("[progress]"),
        "progress is off by default"
    );

    // The report table on stdout is identical modulo the wall-clock line
    // and the differing --json paths: slicing the run for progress is
    // pure observability.
    let table = |out: &[u8]| -> String {
        String::from_utf8_lossy(out)
            .lines()
            .filter(|l| !l.starts_with("[simulated in") && !l.starts_with("[json:"))
            .collect::<Vec<_>>()
            .join("\n")
    };
    assert_eq!(
        table(&plain.stdout),
        table(&progress.stdout),
        "--progress must not perturb the report"
    );
    let a = std::fs::read(&plain_json).expect("plain digest");
    let b = std::fs::read(&progress_json).expect("progress digest");
    assert!(!a.is_empty());
    assert_eq!(a, b, "--progress must leave the JSON digest untouched");
    assert!(!b.windows(10).any(|w| w == b"[progress]"), "JSON files never see the ticker");
}

#[test]
fn arrival_window_override_does_not_change_the_report() {
    let scenario = write_scenario();
    let (default_json, zero_json, tiny_json) =
        (scratch("win-default.json"), scratch("win-zero.json"), scratch("win-tiny.json"));
    run_dilu(&["run", scenario.to_str().unwrap(), "--json", default_json.to_str().unwrap()]);
    run_dilu(&[
        "run",
        scenario.to_str().unwrap(),
        "--arrival-window",
        "0",
        "--json",
        zero_json.to_str().unwrap(),
    ]);
    run_dilu(&[
        "run",
        scenario.to_str().unwrap(),
        "--arrival-window",
        "1",
        "--json",
        tiny_json.to_str().unwrap(),
    ]);
    let default = std::fs::read(&default_json).expect("default digest");
    assert!(!default.is_empty());
    assert_eq!(
        default,
        std::fs::read(&zero_json).expect("zero digest"),
        "--arrival-window 0 (materialized) must match the streamed default"
    );
    assert_eq!(
        default,
        std::fs::read(&tiny_json).expect("tiny digest"),
        "--arrival-window 1 must match the streamed default"
    );
}

#[test]
fn bogus_arrival_window_fails_loudly() {
    let scenario = write_scenario();
    let out = Command::new(env!("CARGO_BIN_EXE_dilu"))
        .args(["run", scenario.to_str().unwrap(), "--arrival-window", "lots"])
        .output()
        .expect("dilu binary runs");
    assert!(!out.status.success(), "bogus window must be rejected");
    let stderr = String::from_utf8_lossy(&out.stderr);
    assert!(stderr.contains("lots"), "error names the bad value: {stderr}");
}

//! The `dilu lint` gate, end to end: the real workspace audits clean
//! (exit 0), a planted fixture workspace fails with the rule names on
//! stderr, and `--json` dumps machine-readable findings either way.

use std::path::{Path, PathBuf};
use std::process::Command;

fn dilu() -> Command {
    Command::new(env!("CARGO_BIN_EXE_dilu"))
}

fn repo_root() -> &'static Path {
    Path::new(env!("CARGO_MANIFEST_DIR"))
        .ancestors()
        .nth(2)
        .expect("crates/cli sits two levels below the workspace root")
}

fn planted_ws() -> PathBuf {
    repo_root().join("crates/lint/tests/fixtures/ws")
}

#[test]
fn lint_exits_zero_on_the_clean_workspace() {
    let out = dilu().arg("lint").arg("--root").arg(repo_root()).output().expect("spawn dilu");
    let stdout = String::from_utf8_lossy(&out.stdout);
    let stderr = String::from_utf8_lossy(&out.stderr);
    assert!(out.status.success(), "lint must pass on the shipped tree:\n{stderr}");
    assert!(stdout.contains("clean: no determinism findings"), "{stdout}");
}

#[test]
fn lint_exits_nonzero_on_a_planted_workspace_and_names_the_rules() {
    let out = dilu().arg("lint").arg("--root").arg(planted_ws()).output().expect("spawn dilu");
    assert!(!out.status.success(), "planted violations must fail the gate");
    let stderr = String::from_utf8_lossy(&out.stderr);
    assert!(stderr.contains("no-unordered-iteration"), "stderr names the rule:\n{stderr}");
    assert!(stderr.contains("no-ambient-time"), "stderr names the rule:\n{stderr}");
    assert!(stderr.contains("src/planted.rs"), "stderr names the file:\n{stderr}");
}

#[test]
fn lint_rule_filter_restricts_findings() {
    let out = dilu()
        .args(["lint", "--rule", "no-ambient-time", "--root"])
        .arg(planted_ws())
        .output()
        .expect("spawn dilu");
    assert!(!out.status.success());
    let stderr = String::from_utf8_lossy(&out.stderr);
    assert!(stderr.contains("no-ambient-time"), "{stderr}");
    assert!(!stderr.contains("no-unordered-iteration"), "filtered out:\n{stderr}");
}

#[test]
fn lint_rejects_an_unknown_rule_name() {
    let out = dilu().args(["lint", "--rule", "no-such-rule"]).output().expect("spawn dilu");
    assert!(!out.status.success());
    let stderr = String::from_utf8_lossy(&out.stderr);
    assert!(stderr.contains("no-such-rule"), "{stderr}");
    assert!(stderr.contains("no-unordered-iteration"), "lists known rules:\n{stderr}");
}

#[test]
fn lint_json_dump_carries_the_findings() {
    let json_path = Path::new(env!("CARGO_TARGET_TMPDIR")).join("lint-gate-findings.json");
    let out = dilu()
        .arg("lint")
        .arg("--json")
        .arg(&json_path)
        .arg("--root")
        .arg(planted_ws())
        .output()
        .expect("spawn dilu");
    assert!(!out.status.success());
    let json = std::fs::read_to_string(&json_path).expect("JSON dump written even on failure");
    assert!(json.contains("\"clean\": false"), "{json}");
    assert!(json.contains("no-unordered-iteration"), "{json}");
    assert!(json.contains("src/planted.rs"), "{json}");
}

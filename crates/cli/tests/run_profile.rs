//! `dilu run --profile` end to end: the phase table renders (under the
//! dense-quantum stepper, whose wakes drive every phase each cycle), and
//! profiling never perturbs the simulation — the `--json` digest matches
//! the unprofiled run byte-for-byte once the wall-clock-derived (and so
//! nondeterministic) `"profile"` entry is removed.

use std::path::PathBuf;
use std::process::Command;

use serde::Value;

fn scratch(name: &str) -> PathBuf {
    let dir = PathBuf::from(env!("CARGO_TARGET_TMPDIR"));
    std::fs::create_dir_all(&dir).expect("tmpdir exists");
    dir.join(name)
}

fn write_scenario() -> PathBuf {
    let path = scratch("profile-scenario.toml");
    std::fs::write(
        &path,
        r#"
name = "cli-profile"

[cluster]
nodes = 1
gpus_per_node = 2

[system]
preset = "dilu"

[system.controller]
name = "co-scale"

[run]
horizon_secs = 10
seed = 99

[[functions]]
model = "bert-base"
arrivals = { process = "trace", shape = "bursty", rate = 30.0, scale = 4.0 }
"#,
    )
    .expect("scenario written");
    path
}

fn run_dilu(args: &[&str]) -> String {
    let out =
        Command::new(env!("CARGO_BIN_EXE_dilu")).args(args).output().expect("dilu binary runs");
    assert!(
        out.status.success(),
        "dilu {args:?} failed:\n{}",
        String::from_utf8_lossy(&out.stderr)
    );
    String::from_utf8(out.stdout).expect("utf8 output")
}

/// Parses a written `--json` digest and re-serializes it through the same
/// serializer, dropping the `"profile"` entry if present — the only
/// nondeterministic (wall-clock) part of a profiled digest.
fn digest_without_profile(path: &PathBuf) -> (String, Option<Value>) {
    let text = std::fs::read_to_string(path).expect("digest written");
    let value = serde_json::parse_value(&text).expect("digest parses");
    let Value::Map(mut entries) = value else { panic!("digest is a map") };
    let profile = entries
        .iter()
        .position(|(k, _)| matches!(k, Value::Str(s) if s == "profile"))
        .map(|i| entries.remove(i).1);
    (serde_json::to_string(&Value::Map(entries)).expect("re-serializes"), profile)
}

#[test]
fn profile_renders_a_table_and_leaves_the_json_digest_untouched() {
    let scenario = write_scenario();
    let sc = scenario.to_str().unwrap();
    let (plain, profiled) = (scratch("profile-off.json"), scratch("profile-on.json"));

    run_dilu(&["run", sc, "--time-model", "dense-quantum", "--json", plain.to_str().unwrap()]);
    let stdout = run_dilu(&[
        "run",
        sc,
        "--time-model",
        "dense-quantum",
        "--profile",
        "--json",
        profiled.to_str().unwrap(),
    ]);

    // The table renders with the header and real phase rows.
    assert!(stdout.contains("== phase profile =="), "table missing:\n{stdout}");
    assert!(stdout.contains("wall_ms"), "header missing:\n{stdout}");
    for phase in ["step", "arrive", "dispatch", "tick"] {
        assert!(stdout.contains(phase), "phase row `{phase}` missing:\n{stdout}");
    }

    let (plain_digest, plain_profile) = digest_without_profile(&plain);
    let (profiled_digest, profile) = digest_without_profile(&profiled);
    assert!(plain_profile.is_none(), "unprofiled run must not embed a profile");
    assert_eq!(plain_digest, profiled_digest, "--profile must not perturb the simulation digest");

    // Dense-quantum phase counters are coherent: the profiler saw wakes,
    // and the per-phase event counts it reports are non-trivial.
    let Some(Value::Map(profile)) = profile else { panic!("profiled run embeds a profile map") };
    let field = |entries: &[(Value, Value)], name: &str| {
        entries
            .iter()
            .find(|(k, _)| matches!(k, Value::Str(s) if s == name))
            .map(|(_, v)| v.clone())
    };
    let Some(Value::UInt(wakes)) = field(&profile, "wakes") else { panic!("wakes recorded") };
    assert!(wakes > 0, "dense stepping wakes every quantum");
    let Some(Value::Map(phases)) = field(&profile, "phases") else { panic!("phases recorded") };
    let events: u64 = phases
        .iter()
        .filter_map(|(_, v)| match v {
            Value::Map(stat) => match field(stat, "events") {
                Some(Value::UInt(n)) => Some(n),
                _ => None,
            },
            _ => None,
        })
        .sum();
    assert!(events > 0, "phase event counters must accumulate across wakes");
}

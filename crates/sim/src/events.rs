//! A stable-ordered future event list.

use std::cmp::Ordering;
use std::collections::{BTreeSet, BinaryHeap};

use crate::SimTime;

/// Handle to a cancellable event in an [`EventQueue`].
///
/// Obtained from [`EventQueue::push_cancellable`]; spend it on
/// [`EventQueue::cancel`] to withdraw the event before it fires. Tokens are
/// unique per queue and never reused.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct EventToken(u64);

/// A min-ordered queue of `(SimTime, T)` events.
///
/// Events scheduled for the same instant pop in insertion order, which keeps
/// simulations deterministic regardless of heap internals. Events pushed via
/// [`push_cancellable`](Self::push_cancellable) can be withdrawn again with
/// their [`EventToken`] — cancellation is O(1) (lazy deletion: the entry is
/// skipped when it reaches the head), which is what deadline-heavy
/// simulations need (most batch-formation deadlines are cancelled by an
/// earlier full-batch dispatch and never fire).
///
/// # Examples
///
/// ```
/// use dilu_sim::{EventQueue, SimTime};
///
/// let mut q = EventQueue::new();
/// q.push(SimTime::from_millis(3), 'b');
/// q.push(SimTime::from_millis(3), 'c');
/// q.push(SimTime::from_millis(1), 'a');
/// let order: Vec<char> = std::iter::from_fn(|| q.pop().map(|(_, e)| e)).collect();
/// assert_eq!(order, ['a', 'b', 'c']);
/// ```
///
/// Cancellation:
///
/// ```
/// use dilu_sim::{EventQueue, SimTime};
///
/// let mut q = EventQueue::new();
/// let deadline = q.push_cancellable(SimTime::from_millis(10), "timeout");
/// q.push(SimTime::from_millis(20), "tick");
/// assert!(q.cancel(deadline));
/// assert_eq!(q.pop(), Some((SimTime::from_millis(20), "tick")));
/// ```
#[derive(Debug, Clone)]
pub struct EventQueue<T> {
    heap: BinaryHeap<Entry<T>>,
    next_seq: u64,
    /// Tokens of cancellable entries still sitting in the heap.
    cancellable: BTreeSet<u64>,
    /// Tokens cancelled but not yet physically removed (lazy deletion).
    cancelled: BTreeSet<u64>,
}

#[derive(Debug, Clone)]
struct Entry<T> {
    at: SimTime,
    seq: u64,
    event: T,
}

impl<T> PartialEq for Entry<T> {
    fn eq(&self, other: &Self) -> bool {
        self.at == other.at && self.seq == other.seq
    }
}

impl<T> Eq for Entry<T> {}

impl<T> PartialOrd for Entry<T> {
    fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
        Some(self.cmp(other))
    }
}

impl<T> Ord for Entry<T> {
    fn cmp(&self, other: &Self) -> Ordering {
        // BinaryHeap is a max-heap: reverse to pop the earliest (time, seq).
        (other.at, other.seq).cmp(&(self.at, self.seq))
    }
}

impl<T> EventQueue<T> {
    /// Creates an empty queue.
    pub fn new() -> Self {
        Self::with_capacity(0)
    }

    /// Creates an empty queue with room for `capacity` events before
    /// reallocating — a hint for event-driven simulations that know their
    /// steady-state pending-event count up front.
    pub fn with_capacity(capacity: usize) -> Self {
        EventQueue {
            heap: BinaryHeap::with_capacity(capacity),
            next_seq: 0,
            cancellable: BTreeSet::new(),
            cancelled: BTreeSet::new(),
        }
    }

    /// Reserves room for at least `additional` more events.
    pub fn reserve(&mut self, additional: usize) {
        self.heap.reserve(additional);
    }

    /// Schedules `event` to fire at `at`.
    pub fn push(&mut self, at: SimTime, event: T) {
        let seq = self.next_seq;
        self.next_seq += 1;
        self.heap.push(Entry { at, seq, event });
    }

    /// Schedules `event` to fire at `at` and returns a token that can
    /// [`cancel`](Self::cancel) it before then.
    ///
    /// Cancellable events keep the same same-instant FIFO ordering as plain
    /// pushes — the token costs one ordered-set entry, nothing more.
    pub fn push_cancellable(&mut self, at: SimTime, event: T) -> EventToken {
        let seq = self.next_seq;
        self.next_seq += 1;
        self.heap.push(Entry { at, seq, event });
        self.cancellable.insert(seq);
        EventToken(seq)
    }

    /// Cancels a pending event. Returns `true` if the event was still
    /// pending (it will never fire), `false` if it already fired or was
    /// already cancelled.
    pub fn cancel(&mut self, token: EventToken) -> bool {
        if self.cancellable.remove(&token.0) {
            self.cancelled.insert(token.0);
            true
        } else {
            false
        }
    }

    /// Drops cancelled entries sitting at the head of the heap.
    fn purge_cancelled_head(&mut self) {
        while let Some(head) = self.heap.peek() {
            if self.cancelled.contains(&head.seq) {
                let seq = self.heap.pop().expect("peeked").seq;
                self.cancelled.remove(&seq);
            } else {
                break;
            }
        }
    }

    /// Removes and returns the earliest event, or `None` if empty.
    pub fn pop(&mut self) -> Option<(SimTime, T)> {
        self.purge_cancelled_head();
        self.heap.pop().map(|e| {
            self.cancellable.remove(&e.seq);
            (e.at, e.event)
        })
    }

    /// The earliest pending event without removing it, if any.
    pub fn peek(&mut self) -> Option<(SimTime, &T)> {
        self.purge_cancelled_head();
        self.heap.peek().map(|e| (e.at, &e.event))
    }

    /// The instant of the earliest pending event, if any.
    pub fn peek_time(&mut self) -> Option<SimTime> {
        self.purge_cancelled_head();
        self.heap.peek().map(|e| e.at)
    }

    /// Removes and returns the earliest event only if it fires at or before
    /// `now`.
    pub fn pop_due(&mut self, now: SimTime) -> Option<(SimTime, T)> {
        if self.peek_time().is_some_and(|t| t <= now) {
            self.pop()
        } else {
            None
        }
    }

    /// The number of pending (non-cancelled) events.
    pub fn len(&self) -> usize {
        self.heap.len() - self.cancelled.len()
    }

    /// `true` if no events are pending.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Drops every pending event (tokens from before the clear no longer
    /// cancel anything).
    pub fn clear(&mut self) {
        self.heap.clear();
        self.cancellable.clear();
        self.cancelled.clear();
    }
}

impl<T> Default for EventQueue<T> {
    fn default() -> Self {
        EventQueue::new()
    }
}

impl<T> Extend<(SimTime, T)> for EventQueue<T> {
    fn extend<I: IntoIterator<Item = (SimTime, T)>>(&mut self, iter: I) {
        for (at, event) in iter {
            self.push(at, event);
        }
    }
}

impl<T> FromIterator<(SimTime, T)> for EventQueue<T> {
    fn from_iter<I: IntoIterator<Item = (SimTime, T)>>(iter: I) -> Self {
        let mut q = EventQueue::new();
        q.extend(iter);
        q
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn pops_in_time_order() {
        let mut q = EventQueue::new();
        q.push(SimTime::from_millis(30), 3);
        q.push(SimTime::from_millis(10), 1);
        q.push(SimTime::from_millis(20), 2);
        assert_eq!(q.pop(), Some((SimTime::from_millis(10), 1)));
        assert_eq!(q.pop(), Some((SimTime::from_millis(20), 2)));
        assert_eq!(q.pop(), Some((SimTime::from_millis(30), 3)));
        assert_eq!(q.pop(), None);
    }

    #[test]
    fn ties_pop_in_insertion_order() {
        let mut q = EventQueue::new();
        for i in 0..100 {
            q.push(SimTime::from_millis(7), i);
        }
        for i in 0..100 {
            assert_eq!(q.pop().unwrap().1, i);
        }
    }

    #[test]
    fn pop_due_respects_now() {
        let mut q = EventQueue::new();
        q.push(SimTime::from_millis(10), "later");
        assert_eq!(q.pop_due(SimTime::from_millis(9)), None);
        assert_eq!(q.pop_due(SimTime::from_millis(10)), Some((SimTime::from_millis(10), "later")));
        assert!(q.is_empty());
    }

    #[test]
    fn collects_from_iterator() {
        let mut q: EventQueue<u8> =
            (0u8..5).map(|i| (SimTime::from_millis(u64::from(i)), i)).collect();
        assert_eq!(q.len(), 5);
        assert_eq!(q.peek_time(), Some(SimTime::ZERO));
    }

    #[test]
    fn cancelled_events_never_fire() {
        let mut q = EventQueue::new();
        let a = q.push_cancellable(SimTime::from_millis(5), "a");
        q.push(SimTime::from_millis(10), "b");
        assert_eq!(q.len(), 2);
        assert!(q.cancel(a));
        assert_eq!(q.len(), 1);
        assert_eq!(q.peek_time(), Some(SimTime::from_millis(10)));
        assert_eq!(q.pop(), Some((SimTime::from_millis(10), "b")));
        assert!(q.is_empty());
    }

    #[test]
    fn cancel_is_single_shot_and_rejects_fired_events() {
        let mut q = EventQueue::new();
        let a = q.push_cancellable(SimTime::from_millis(1), "a");
        let b = q.push_cancellable(SimTime::from_millis(2), "b");
        assert_eq!(q.pop(), Some((SimTime::from_millis(1), "a")));
        assert!(!q.cancel(a), "already fired");
        assert!(q.cancel(b));
        assert!(!q.cancel(b), "already cancelled");
        assert_eq!(q.pop(), None);
    }

    #[test]
    fn same_instant_fifo_survives_interleaved_push_and_cancel() {
        let mut q = EventQueue::new();
        let t = SimTime::from_millis(9);
        q.push(t, 0);
        let c1 = q.push_cancellable(t, 1);
        q.push(t, 2);
        let c3 = q.push_cancellable(t, 3);
        q.push(t, 4);
        assert!(q.cancel(c1));
        q.push(t, 5);
        assert!(q.cancel(c3));
        let order: Vec<i32> = std::iter::from_fn(|| q.pop().map(|(_, e)| e)).collect();
        assert_eq!(order, [0, 2, 4, 5], "survivors keep insertion order");
    }

    #[test]
    fn peek_skips_cancelled_heads() {
        let mut q = EventQueue::new();
        let a = q.push_cancellable(SimTime::from_millis(1), 'a');
        let b = q.push_cancellable(SimTime::from_millis(2), 'b');
        q.push(SimTime::from_millis(3), 'c');
        q.cancel(a);
        q.cancel(b);
        assert_eq!(q.peek(), Some((SimTime::from_millis(3), &'c')));
        assert_eq!(q.len(), 1);
    }

    #[test]
    fn clear_invalidates_outstanding_tokens() {
        let mut q = EventQueue::new();
        let a = q.push_cancellable(SimTime::from_millis(1), 'a');
        q.clear();
        assert!(q.is_empty());
        assert!(!q.cancel(a));
        q.push(SimTime::from_millis(2), 'b');
        assert_eq!(q.pop(), Some((SimTime::from_millis(2), 'b')));
    }

    #[test]
    fn cancel_after_pop_due_is_a_noop() {
        let mut q = EventQueue::new();
        let a = q.push_cancellable(SimTime::from_millis(5), "a");
        q.push(SimTime::from_millis(5), "b");
        assert_eq!(q.pop_due(SimTime::from_millis(5)), Some((SimTime::from_millis(5), "a")));
        // The event already fired: cancelling its token must not disturb
        // anything still pending at the same instant.
        assert!(!q.cancel(a));
        assert_eq!(q.len(), 1);
        assert_eq!(q.pop_due(SimTime::from_millis(5)), Some((SimTime::from_millis(5), "b")));
    }

    #[test]
    fn double_cancel_reports_false_and_stays_consistent() {
        let mut q = EventQueue::new();
        let a = q.push_cancellable(SimTime::from_millis(3), 'a');
        q.push(SimTime::from_millis(4), 'b');
        assert!(q.cancel(a));
        for _ in 0..3 {
            assert!(!q.cancel(a), "a token is spent by its first cancel");
        }
        assert_eq!(q.len(), 1, "double-cancel must not discount live events");
        assert_eq!(q.pop(), Some((SimTime::from_millis(4), 'b')));
        assert!(q.is_empty());
    }

    #[test]
    fn peek_and_peek_time_skip_runs_of_lazily_deleted_entries() {
        let mut q = EventQueue::new();
        // A run of cancelled entries at the head, interleaved with the
        // surviving ones, all at mixed instants.
        let dead: Vec<EventToken> =
            (0..10).map(|i| q.push_cancellable(SimTime::from_millis(i), i)).collect();
        q.push(SimTime::from_millis(4), 100);
        q.push(SimTime::from_millis(20), 200);
        for t in dead {
            assert!(q.cancel(t));
        }
        // peek_time and peek purge the dead head without firing anything.
        assert_eq!(q.peek_time(), Some(SimTime::from_millis(4)));
        assert_eq!(q.peek(), Some((SimTime::from_millis(4), &100)));
        assert_eq!(q.len(), 2);
        assert_eq!(q.pop_due(SimTime::from_millis(3)), None, "nothing live is due yet");
        assert_eq!(q.pop_due(SimTime::from_millis(4)), Some((SimTime::from_millis(4), 100)));
        assert_eq!(q.peek_time(), Some(SimTime::from_millis(20)));
    }

    #[test]
    fn tokens_are_never_reused_across_pushes() {
        let mut q = EventQueue::new();
        let t = SimTime::from_millis(8);
        let first = q.push_cancellable(t, "first");
        assert_eq!(q.pop(), Some((t, "first")));
        // Same instant, fresh entry: the spent token must neither equal the
        // new one nor be able to cancel it.
        let second = q.push_cancellable(t, "second");
        assert_ne!(first, second);
        assert!(!q.cancel(first), "a fired token must never cancel a later push");
        assert_eq!(q.len(), 1);
        assert!(q.cancel(second));
        assert!(q.is_empty());
        // And a cancelled (never fired) token stays spent across pushes too.
        let third = q.push_cancellable(t, "third");
        assert!(q.cancel(third));
        let fourth = q.push_cancellable(t, "fourth");
        assert_ne!(third, fourth);
        assert!(!q.cancel(third));
        assert_eq!(q.pop(), Some((t, "fourth")));
    }

    #[test]
    fn with_capacity_and_reserve_are_usable() {
        let mut q: EventQueue<u32> = EventQueue::with_capacity(64);
        q.reserve(128);
        for i in 0..10 {
            q.push(SimTime::from_millis(i), i as u32);
        }
        assert_eq!(q.len(), 10);
    }
}

//! A stable-ordered future event list, implemented as a hierarchical
//! timer wheel.
//!
//! The structure is two-level. A **near wheel** of [`SLOTS`]
//! granularity-aligned buckets covers the window `[base, base + SLOTS)`
//! of time ticks (`tick = at / granularity`); events inside the window
//! append to their tick's bucket in O(1). Everything past the window
//! waits in a **far heap** and cascades into the wheel when the base
//! advances — each event cascades at most once, so push + pop stays O(1)
//! amortized for the near-future events that dominate event-driven
//! simulation (deadlines, quantum wakes, flow finishes), with the far
//! heap's O(log n) reserved for the rare long-range schedule.
//!
//! Payloads live in a generation-stamped slab: an [`EventToken`] packs
//! `(slot, generation)`, so cancellation is a single slab probe — O(1),
//! no side set — and frees the payload **eagerly**. Bucket and far-heap
//! entries left behind by a cancel are skipped when reached (their
//! generation no longer matches) and compacted away when they pile up,
//! so physical occupancy stays proportional to the live event count (see
//! [`EventQueue::physical_occupancy`]).

use std::cmp::Ordering;
use std::collections::BinaryHeap;

use crate::{SimDuration, SimTime};

/// Buckets in the near wheel. Exactly 64 so the occupancy set is one
/// machine word (`u64` bitmap, find-first-occupied = one rotate + ctz).
const SLOTS: usize = 64;

/// Default bucket granularity in microseconds: the 5 ms scheduling
/// quantum every shipped scenario runs on. A queue built for a different
/// grid should use [`EventQueue::with_granularity`].
const DEFAULT_GRANULARITY_US: u64 = 5_000;

/// Handle to a cancellable event in an [`EventQueue`].
///
/// Obtained from [`EventQueue::push_cancellable`]; spend it on
/// [`EventQueue::cancel`] to withdraw the event before it fires. Tokens
/// pack a slab slot and its generation stamp: the stamp changes when the
/// event fires or is cancelled, so a spent token can never cancel a later
/// event that happens to reuse the slot.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct EventToken(u64);

impl EventToken {
    fn new(idx: u32, gen: u32) -> Self {
        EventToken(u64::from(gen) << 32 | u64::from(idx))
    }

    fn idx(self) -> usize {
        (self.0 & u64::from(u32::MAX)) as usize
    }

    fn gen(self) -> u32 {
        (self.0 >> 32) as u32
    }
}

/// A min-ordered queue of `(SimTime, T)` events.
///
/// Events scheduled for the same instant pop in insertion order, which keeps
/// simulations deterministic regardless of the queue's internals. Events
/// pushed via [`push_cancellable`](Self::push_cancellable) can be withdrawn
/// again with their [`EventToken`] — cancellation is O(1) (one
/// generation-stamped slab probe) and reclaims the payload slot eagerly,
/// which is what deadline-heavy simulations need (most batch-formation
/// deadlines are cancelled by an earlier full-batch dispatch and never
/// fire).
///
/// # Examples
///
/// ```
/// use dilu_sim::{EventQueue, SimTime};
///
/// let mut q = EventQueue::new();
/// q.push(SimTime::from_millis(3), 'b');
/// q.push(SimTime::from_millis(3), 'c');
/// q.push(SimTime::from_millis(1), 'a');
/// let order: Vec<char> = std::iter::from_fn(|| q.pop().map(|(_, e)| e)).collect();
/// assert_eq!(order, ['a', 'b', 'c']);
/// ```
///
/// Cancellation:
///
/// ```
/// use dilu_sim::{EventQueue, SimTime};
///
/// let mut q = EventQueue::new();
/// let deadline = q.push_cancellable(SimTime::from_millis(10), "timeout");
/// q.push(SimTime::from_millis(20), "tick");
/// assert!(q.cancel(deadline));
/// assert_eq!(q.pop(), Some((SimTime::from_millis(20), "tick")));
/// ```
#[derive(Debug, Clone)]
pub struct EventQueue<T> {
    /// Bucket width in microseconds (`tick = at_us / granularity`).
    granularity: u64,
    /// Tick owned by `buckets[cursor]`; the wheel covers
    /// `[base_tick, base_tick + SLOTS)`.
    base_tick: u64,
    cursor: usize,
    buckets: Vec<Bucket>,
    /// Bit `b` set ⇔ `buckets[b]` holds unconsumed entries (live or
    /// cancelled residue).
    occupied: u64,
    /// Events with `tick ≥ base_tick + SLOTS`, min-ordered by `(at, seq)`.
    /// Invariant (restored after every base advance by cascading): the far
    /// head is never inside the wheel window.
    far: BinaryHeap<FarEntry>,
    /// Cancelled entries still physically in `far` (compaction trigger).
    far_dead: usize,
    /// Cancelled entries still physically in `buckets` (compaction
    /// trigger).
    near_dead: usize,
    slab: Vec<Slot<T>>,
    free: Vec<u32>,
    next_seq: u64,
    /// Live (non-cancelled) events.
    len: usize,
}

/// One wheel bucket: entries of a single tick (plus past-time pushes
/// clamped into the cursor bucket), consumed front-to-back through `head`.
#[derive(Debug, Clone)]
struct Bucket {
    items: Vec<BucketItem>,
    /// Consumed prefix of `items`.
    head: usize,
    /// `items[head..]` is ascending by `(at, seq)`. Maintained on append
    /// (the common case appends in order); a violating append clears it
    /// and the bucket is sorted once when the cursor reaches it.
    sorted: bool,
}

impl Default for Bucket {
    fn default() -> Self {
        Bucket { items: Vec::new(), head: 0, sorted: true }
    }
}

#[derive(Debug, Clone, Copy)]
struct BucketItem {
    at: SimTime,
    seq: u64,
    idx: u32,
    gen: u32,
}

/// Slab slot: `payload` is `Some` while the event is pending; firing or
/// cancelling takes the payload and bumps the generation, killing every
/// outstanding reference (bucket entries, far entries, tokens) at once.
#[derive(Debug, Clone)]
struct Slot<T> {
    gen: u32,
    /// Whether the slot's physical entry sits in the wheel (`true`) or the
    /// far heap (`false`) — tells `cancel` which dead counter to bump.
    near: bool,
    payload: Option<T>,
}

#[derive(Debug, Clone)]
struct FarEntry {
    at: SimTime,
    seq: u64,
    idx: u32,
    gen: u32,
}

impl PartialEq for FarEntry {
    fn eq(&self, other: &Self) -> bool {
        self.at == other.at && self.seq == other.seq
    }
}

impl Eq for FarEntry {}

impl PartialOrd for FarEntry {
    fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
        Some(self.cmp(other))
    }
}

impl Ord for FarEntry {
    fn cmp(&self, other: &Self) -> Ordering {
        // BinaryHeap is a max-heap: reverse to pop the earliest (time, seq).
        (other.at, other.seq).cmp(&(self.at, self.seq))
    }
}

impl<T> EventQueue<T> {
    /// Creates an empty queue on the default 5 ms bucket granularity.
    pub fn new() -> Self {
        Self::with_capacity(0)
    }

    /// Creates an empty queue with room for `capacity` events before
    /// reallocating — a hint for event-driven simulations that know their
    /// steady-state pending-event count up front.
    pub fn with_capacity(capacity: usize) -> Self {
        Self::with_granularity_and_capacity(
            SimDuration::from_micros(DEFAULT_GRANULARITY_US),
            capacity,
        )
    }

    /// Creates an empty queue whose near-wheel buckets are `granularity`
    /// wide — pass the simulation's scheduling quantum so every
    /// grid-aligned event lands in its own bucket. The wheel covers
    /// `64 × granularity` of near future; events beyond that wait in the
    /// far heap and cascade in (once each) as time advances.
    pub fn with_granularity(granularity: SimDuration) -> Self {
        Self::with_granularity_and_capacity(granularity, 0)
    }

    fn with_granularity_and_capacity(granularity: SimDuration, capacity: usize) -> Self {
        EventQueue {
            granularity: granularity.as_micros().max(1),
            base_tick: 0,
            cursor: 0,
            buckets: (0..SLOTS).map(|_| Bucket::default()).collect(),
            occupied: 0,
            far: BinaryHeap::new(),
            far_dead: 0,
            near_dead: 0,
            slab: Vec::with_capacity(capacity),
            free: Vec::new(),
            next_seq: 0,
            len: 0,
        }
    }

    /// Reserves room for at least `additional` more events.
    pub fn reserve(&mut self, additional: usize) {
        self.slab.reserve(additional.saturating_sub(self.free.len()));
    }

    fn tick_of(&self, at: SimTime) -> u64 {
        at.as_micros() / self.granularity
    }

    fn alloc_slot(&mut self, near: bool, event: T) -> (u32, u32) {
        if let Some(idx) = self.free.pop() {
            let slot = &mut self.slab[idx as usize];
            debug_assert!(slot.payload.is_none(), "free list holds only vacant slots");
            slot.near = near;
            slot.payload = Some(event);
            (idx, slot.gen)
        } else {
            let idx = u32::try_from(self.slab.len()).expect("fewer than 2^32 pending events");
            self.slab.push(Slot { gen: 0, near, payload: Some(event) });
            (idx, 0)
        }
    }

    fn bucket_append(bucket: &mut Bucket, item: BucketItem) {
        if bucket.head == bucket.items.len() {
            // Fully consumed: restart the bucket in place.
            bucket.items.clear();
            bucket.head = 0;
            bucket.sorted = true;
        } else if let Some(last) = bucket.items.last() {
            if (item.at, item.seq) < (last.at, last.seq) {
                bucket.sorted = false;
            }
        }
        bucket.items.push(item);
    }

    fn insert(&mut self, at: SimTime, seq: u64, idx: u32, gen: u32) {
        let tick = self.tick_of(at);
        if tick >= self.base_tick + SLOTS as u64 {
            self.slab[idx as usize].near = false;
            self.far.push(FarEntry { at, seq, idx, gen });
        } else {
            // Past-time pushes (tick < base) clamp into the cursor bucket;
            // the entry keeps its true `at`, and the bucket sort restores
            // (at, seq) order before anything pops.
            let b =
                if tick <= self.base_tick { self.cursor } else { (tick % SLOTS as u64) as usize };
            Self::bucket_append(&mut self.buckets[b], BucketItem { at, seq, idx, gen });
            self.occupied |= 1u64 << b;
        }
    }

    /// Schedules `event` to fire at `at`.
    pub fn push(&mut self, at: SimTime, event: T) {
        let seq = self.next_seq;
        self.next_seq += 1;
        let (idx, gen) = self.alloc_slot(true, event);
        self.len += 1;
        self.insert(at, seq, idx, gen);
    }

    /// Schedules `event` to fire at `at` and returns a token that can
    /// [`cancel`](Self::cancel) it before then.
    ///
    /// Cancellable events keep the same same-instant FIFO ordering as plain
    /// pushes — every push is slab-backed, so the token is free.
    pub fn push_cancellable(&mut self, at: SimTime, event: T) -> EventToken {
        let seq = self.next_seq;
        self.next_seq += 1;
        let (idx, gen) = self.alloc_slot(true, event);
        self.len += 1;
        self.insert(at, seq, idx, gen);
        EventToken::new(idx, gen)
    }

    /// Cancels a pending event. Returns `true` if the event was still
    /// pending (it will never fire), `false` if it already fired or was
    /// already cancelled.
    ///
    /// O(1): one slab probe. The payload slot is reclaimed eagerly; the
    /// physical wheel/heap entry is skipped when reached (its generation
    /// stamp no longer matches) or removed by compaction before then.
    pub fn cancel(&mut self, token: EventToken) -> bool {
        match self.slab.get_mut(token.idx()) {
            Some(slot) if slot.gen == token.gen() && slot.payload.is_some() => {
                slot.payload = None;
                slot.gen = slot.gen.wrapping_add(1);
                if slot.near {
                    self.near_dead += 1;
                } else {
                    self.far_dead += 1;
                }
                self.free.push(token.idx() as u32);
                self.len -= 1;
                self.maybe_compact();
                true
            }
            _ => false,
        }
    }

    /// Moves every far event that entered the wheel window into its
    /// bucket. Called after each base advance, restoring the invariant
    /// that the far head is outside the window. Cancelled far residue is
    /// dropped here for free.
    fn cascade(&mut self) {
        let limit = self.base_tick + SLOTS as u64;
        while let Some(top) = self.far.peek() {
            let tick = self.tick_of(top.at);
            if tick >= limit {
                break;
            }
            let e = self.far.pop().expect("peeked");
            let slot = &mut self.slab[e.idx as usize];
            if slot.gen != e.gen || slot.payload.is_none() {
                self.far_dead -= 1;
                continue;
            }
            slot.near = true;
            debug_assert!(tick >= self.base_tick, "cascade never moves behind the base");
            let b = (tick % SLOTS as u64) as usize;
            Self::bucket_append(
                &mut self.buckets[b],
                BucketItem { at: e.at, seq: e.seq, idx: e.idx, gen: e.gen },
            );
            self.occupied |= 1u64 << b;
        }
    }

    /// Positions the cursor on the bucket holding the earliest live event,
    /// with that bucket sorted and its front entry live. Returns `false`
    /// when no live event exists. Advances the base (cascading the far
    /// heap) and reclaims cancelled residue as a side effect.
    fn settle(&mut self) -> bool {
        loop {
            let off = self.occupied.rotate_right(self.cursor as u32).trailing_zeros() as usize;
            if off < SLOTS {
                let b_idx = (self.cursor + off) % SLOTS;
                if off > 0 {
                    self.base_tick += off as u64;
                    self.cursor = b_idx;
                    self.cascade();
                }
                let bucket = &mut self.buckets[b_idx];
                if !bucket.sorted {
                    bucket.items[bucket.head..].sort_unstable_by_key(|i| (i.at, i.seq));
                    bucket.sorted = true;
                }
                // Skip cancelled residue at the front.
                loop {
                    let Some(item) = self.buckets[b_idx].items.get(self.buckets[b_idx].head) else {
                        let bucket = &mut self.buckets[b_idx];
                        bucket.items.clear();
                        bucket.head = 0;
                        bucket.sorted = true;
                        self.occupied &= !(1u64 << b_idx);
                        break;
                    };
                    let slot = &self.slab[item.idx as usize];
                    if slot.gen == item.gen && slot.payload.is_some() {
                        return true;
                    }
                    self.buckets[b_idx].head += 1;
                    self.near_dead -= 1;
                }
            } else {
                // Near wheel physically empty: purge dead far heads, then
                // rebase the window onto the earliest far event.
                loop {
                    let Some(top) = self.far.peek() else { return false };
                    let slot = &self.slab[top.idx as usize];
                    if slot.gen == top.gen && slot.payload.is_some() {
                        break;
                    }
                    self.far.pop();
                    self.far_dead -= 1;
                }
                let tick = self.tick_of(self.far.peek().expect("checked").at);
                debug_assert!(tick >= self.base_tick, "time never rewinds past the base");
                self.base_tick = tick;
                self.cursor = (tick % SLOTS as u64) as usize;
                self.cascade();
            }
        }
    }

    /// Frees a live front entry the cursor is parked on (after `settle`).
    fn take_front(&mut self) -> (SimTime, u64, T) {
        let bucket = &mut self.buckets[self.cursor];
        let item = bucket.items[bucket.head];
        bucket.head += 1;
        if bucket.head == bucket.items.len() {
            bucket.items.clear();
            bucket.head = 0;
            bucket.sorted = true;
            self.occupied &= !(1u64 << self.cursor);
        }
        let slot = &mut self.slab[item.idx as usize];
        let payload = slot.payload.take().expect("settle leaves a live front");
        slot.gen = slot.gen.wrapping_add(1);
        self.free.push(item.idx);
        self.len -= 1;
        (item.at, item.seq, payload)
    }

    /// Removes and returns the earliest event, or `None` if empty.
    pub fn pop(&mut self) -> Option<(SimTime, T)> {
        self.pop_with_seq().map(|(at, _, event)| (at, event))
    }

    /// [`pop`](Self::pop) that also reports the event's insertion sequence
    /// number — the queue-global, monotonically increasing push counter
    /// that breaks same-instant ties. Record/replay logs carry it so two
    /// runs can be diffed event-for-event, not just instant-for-instant.
    pub fn pop_with_seq(&mut self) -> Option<(SimTime, u64, T)> {
        if !self.settle() {
            return None;
        }
        Some(self.take_front())
    }

    /// The earliest pending event without removing it, if any.
    pub fn peek(&mut self) -> Option<(SimTime, &T)> {
        if !self.settle() {
            return None;
        }
        let bucket = &self.buckets[self.cursor];
        let item = bucket.items[bucket.head];
        Some((item.at, self.slab[item.idx as usize].payload.as_ref().expect("live front")))
    }

    /// The instant of the earliest pending event, if any.
    pub fn peek_time(&mut self) -> Option<SimTime> {
        if !self.settle() {
            return None;
        }
        let bucket = &self.buckets[self.cursor];
        Some(bucket.items[bucket.head].at)
    }

    /// Removes and returns the earliest event only if it fires at or before
    /// `now`.
    pub fn pop_due(&mut self, now: SimTime) -> Option<(SimTime, T)> {
        self.pop_due_with_seq(now).map(|(at, _, event)| (at, event))
    }

    /// [`pop_due`](Self::pop_due) that also reports the event's insertion
    /// sequence number (see [`pop_with_seq`](Self::pop_with_seq)).
    pub fn pop_due_with_seq(&mut self, now: SimTime) -> Option<(SimTime, u64, T)> {
        if !self.settle() {
            return None;
        }
        let bucket = &self.buckets[self.cursor];
        if bucket.items[bucket.head].at <= now {
            Some(self.take_front())
        } else {
            None
        }
    }

    /// The number of pending (non-cancelled) events.
    pub fn len(&self) -> usize {
        self.len
    }

    /// `true` if no events are pending.
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// Physical entries currently held across the wheel and the far heap:
    /// every live event plus any cancelled residue not yet reclaimed.
    /// Bounded by a small multiple of [`len`](Self::len) — cancellation
    /// frees payload slots eagerly and compaction sweeps the residue — so
    /// a push/cancel churn loop cannot grow the queue without bound (see
    /// the `churn` tests).
    pub fn physical_occupancy(&self) -> usize {
        self.far.len() + self.buckets.iter().map(|b| b.items.len() - b.head).sum::<usize>()
    }

    /// Sweeps cancelled residue once it outnumbers the live events:
    /// amortized O(1) per cancel, and keeps
    /// [`physical_occupancy`](Self::physical_occupancy) bounded even under
    /// pure push/cancel churn that never pops.
    fn maybe_compact(&mut self) {
        if self.far_dead > SLOTS && self.far_dead * 2 > self.far.len() {
            let entries = std::mem::take(&mut self.far).into_vec();
            self.far = entries
                .into_iter()
                .filter(|e| {
                    let slot = &self.slab[e.idx as usize];
                    slot.gen == e.gen && slot.payload.is_some()
                })
                .collect();
            self.far_dead = 0;
        }
        if self.near_dead > SLOTS && self.near_dead * 2 > self.near_physical() {
            for b in 0..SLOTS {
                if self.occupied & (1u64 << b) == 0 {
                    continue;
                }
                let head = self.buckets[b].head;
                // Compact in place: drop the consumed prefix and every
                // dead entry; retention preserves order, so the sorted
                // flag is untouched.
                let mut bucket = std::mem::take(&mut self.buckets[b]);
                bucket.items.drain(..head);
                bucket.head = 0;
                bucket.items.retain(|i| {
                    let slot = &self.slab[i.idx as usize];
                    slot.gen == i.gen && slot.payload.is_some()
                });
                if bucket.items.is_empty() {
                    bucket.sorted = true;
                    self.occupied &= !(1u64 << b);
                }
                self.buckets[b] = bucket;
            }
            self.near_dead = 0;
        }
    }

    fn near_physical(&self) -> usize {
        self.buckets.iter().map(|b| b.items.len() - b.head).sum()
    }

    /// Drops every pending event (tokens from before the clear no longer
    /// cancel anything).
    pub fn clear(&mut self) {
        for (idx, slot) in self.slab.iter_mut().enumerate() {
            if slot.payload.is_some() {
                slot.payload = None;
                slot.gen = slot.gen.wrapping_add(1);
                self.free.push(idx as u32);
            }
        }
        for bucket in &mut self.buckets {
            bucket.items.clear();
            bucket.head = 0;
            bucket.sorted = true;
        }
        self.occupied = 0;
        self.far.clear();
        self.far_dead = 0;
        self.near_dead = 0;
        self.len = 0;
    }
}

impl<T> Default for EventQueue<T> {
    fn default() -> Self {
        EventQueue::new()
    }
}

impl<T> Extend<(SimTime, T)> for EventQueue<T> {
    fn extend<I: IntoIterator<Item = (SimTime, T)>>(&mut self, iter: I) {
        for (at, event) in iter {
            self.push(at, event);
        }
    }
}

impl<T> FromIterator<(SimTime, T)> for EventQueue<T> {
    fn from_iter<I: IntoIterator<Item = (SimTime, T)>>(iter: I) -> Self {
        let mut q = EventQueue::new();
        q.extend(iter);
        q
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn pops_in_time_order() {
        let mut q = EventQueue::new();
        q.push(SimTime::from_millis(30), 3);
        q.push(SimTime::from_millis(10), 1);
        q.push(SimTime::from_millis(20), 2);
        assert_eq!(q.pop(), Some((SimTime::from_millis(10), 1)));
        assert_eq!(q.pop(), Some((SimTime::from_millis(20), 2)));
        assert_eq!(q.pop(), Some((SimTime::from_millis(30), 3)));
        assert_eq!(q.pop(), None);
    }

    #[test]
    fn ties_pop_in_insertion_order() {
        let mut q = EventQueue::new();
        for i in 0..100 {
            q.push(SimTime::from_millis(7), i);
        }
        for i in 0..100 {
            assert_eq!(q.pop().unwrap().1, i);
        }
    }

    #[test]
    fn pop_due_respects_now() {
        let mut q = EventQueue::new();
        q.push(SimTime::from_millis(10), "later");
        assert_eq!(q.pop_due(SimTime::from_millis(9)), None);
        assert_eq!(q.pop_due(SimTime::from_millis(10)), Some((SimTime::from_millis(10), "later")));
        assert!(q.is_empty());
    }

    #[test]
    fn collects_from_iterator() {
        let mut q: EventQueue<u8> =
            (0u8..5).map(|i| (SimTime::from_millis(u64::from(i)), i)).collect();
        assert_eq!(q.len(), 5);
        assert_eq!(q.peek_time(), Some(SimTime::ZERO));
    }

    #[test]
    fn cancelled_events_never_fire() {
        let mut q = EventQueue::new();
        let a = q.push_cancellable(SimTime::from_millis(5), "a");
        q.push(SimTime::from_millis(10), "b");
        assert_eq!(q.len(), 2);
        assert!(q.cancel(a));
        assert_eq!(q.len(), 1);
        assert_eq!(q.peek_time(), Some(SimTime::from_millis(10)));
        assert_eq!(q.pop(), Some((SimTime::from_millis(10), "b")));
        assert!(q.is_empty());
    }

    #[test]
    fn cancel_is_single_shot_and_rejects_fired_events() {
        let mut q = EventQueue::new();
        let a = q.push_cancellable(SimTime::from_millis(1), "a");
        let b = q.push_cancellable(SimTime::from_millis(2), "b");
        assert_eq!(q.pop(), Some((SimTime::from_millis(1), "a")));
        assert!(!q.cancel(a), "already fired");
        assert!(q.cancel(b));
        assert!(!q.cancel(b), "already cancelled");
        assert_eq!(q.pop(), None);
    }

    #[test]
    fn same_instant_fifo_survives_interleaved_push_and_cancel() {
        let mut q = EventQueue::new();
        let t = SimTime::from_millis(9);
        q.push(t, 0);
        let c1 = q.push_cancellable(t, 1);
        q.push(t, 2);
        let c3 = q.push_cancellable(t, 3);
        q.push(t, 4);
        assert!(q.cancel(c1));
        q.push(t, 5);
        assert!(q.cancel(c3));
        let order: Vec<i32> = std::iter::from_fn(|| q.pop().map(|(_, e)| e)).collect();
        assert_eq!(order, [0, 2, 4, 5], "survivors keep insertion order");
    }

    #[test]
    fn peek_skips_cancelled_heads() {
        let mut q = EventQueue::new();
        let a = q.push_cancellable(SimTime::from_millis(1), 'a');
        let b = q.push_cancellable(SimTime::from_millis(2), 'b');
        q.push(SimTime::from_millis(3), 'c');
        q.cancel(a);
        q.cancel(b);
        assert_eq!(q.peek(), Some((SimTime::from_millis(3), &'c')));
        assert_eq!(q.len(), 1);
    }

    #[test]
    fn clear_invalidates_outstanding_tokens() {
        let mut q = EventQueue::new();
        let a = q.push_cancellable(SimTime::from_millis(1), 'a');
        q.clear();
        assert!(q.is_empty());
        assert!(!q.cancel(a));
        q.push(SimTime::from_millis(2), 'b');
        assert_eq!(q.pop(), Some((SimTime::from_millis(2), 'b')));
    }

    #[test]
    fn cancel_after_pop_due_is_a_noop() {
        let mut q = EventQueue::new();
        let a = q.push_cancellable(SimTime::from_millis(5), "a");
        q.push(SimTime::from_millis(5), "b");
        assert_eq!(q.pop_due(SimTime::from_millis(5)), Some((SimTime::from_millis(5), "a")));
        // The event already fired: cancelling its token must not disturb
        // anything still pending at the same instant.
        assert!(!q.cancel(a));
        assert_eq!(q.len(), 1);
        assert_eq!(q.pop_due(SimTime::from_millis(5)), Some((SimTime::from_millis(5), "b")));
    }

    #[test]
    fn double_cancel_reports_false_and_stays_consistent() {
        let mut q = EventQueue::new();
        let a = q.push_cancellable(SimTime::from_millis(3), 'a');
        q.push(SimTime::from_millis(4), 'b');
        assert!(q.cancel(a));
        for _ in 0..3 {
            assert!(!q.cancel(a), "a token is spent by its first cancel");
        }
        assert_eq!(q.len(), 1, "double-cancel must not discount live events");
        assert_eq!(q.pop(), Some((SimTime::from_millis(4), 'b')));
        assert!(q.is_empty());
    }

    #[test]
    fn peek_and_peek_time_skip_runs_of_lazily_deleted_entries() {
        let mut q = EventQueue::new();
        // A run of cancelled entries at the head, interleaved with the
        // surviving ones, all at mixed instants.
        let dead: Vec<EventToken> =
            (0..10).map(|i| q.push_cancellable(SimTime::from_millis(i), i)).collect();
        q.push(SimTime::from_millis(4), 100);
        q.push(SimTime::from_millis(20), 200);
        for t in dead {
            assert!(q.cancel(t));
        }
        // peek_time and peek purge the dead head without firing anything.
        assert_eq!(q.peek_time(), Some(SimTime::from_millis(4)));
        assert_eq!(q.peek(), Some((SimTime::from_millis(4), &100)));
        assert_eq!(q.len(), 2);
        assert_eq!(q.pop_due(SimTime::from_millis(3)), None, "nothing live is due yet");
        assert_eq!(q.pop_due(SimTime::from_millis(4)), Some((SimTime::from_millis(4), 100)));
        assert_eq!(q.peek_time(), Some(SimTime::from_millis(20)));
    }

    #[test]
    fn tokens_are_never_reused_across_pushes() {
        let mut q = EventQueue::new();
        let t = SimTime::from_millis(8);
        let first = q.push_cancellable(t, "first");
        assert_eq!(q.pop(), Some((t, "first")));
        // Same instant, fresh entry: the spent token must neither equal the
        // new one nor be able to cancel it.
        let second = q.push_cancellable(t, "second");
        assert_ne!(first, second);
        assert!(!q.cancel(first), "a fired token must never cancel a later push");
        assert_eq!(q.len(), 1);
        assert!(q.cancel(second));
        assert!(q.is_empty());
        // And a cancelled (never fired) token stays spent across pushes too.
        let third = q.push_cancellable(t, "third");
        assert!(q.cancel(third));
        let fourth = q.push_cancellable(t, "fourth");
        assert_ne!(third, fourth);
        assert!(!q.cancel(third));
        assert_eq!(q.pop(), Some((t, "fourth")));
    }

    #[test]
    fn with_capacity_and_reserve_are_usable() {
        let mut q: EventQueue<u32> = EventQueue::with_capacity(64);
        q.reserve(128);
        for i in 0..10 {
            q.push(SimTime::from_millis(i), i as u32);
        }
        assert_eq!(q.len(), 10);
    }

    // ------------------------------------------------------------------
    // Timer-wheel specifics
    // ------------------------------------------------------------------

    #[test]
    fn far_events_cascade_in_time_order() {
        // Span many wheel windows (default granularity 5 ms × 64 slots =
        // 320 ms per window) so every pop exercises cascade/rebase.
        let mut q = EventQueue::new();
        let times: Vec<u64> = vec![7_000, 1, 320, 5_000, 640, 100_000, 2, 319, 321, 50_000];
        for (i, &ms) in times.iter().enumerate() {
            q.push(SimTime::from_millis(ms), i);
        }
        let mut sorted = times.clone();
        sorted.sort_unstable();
        let popped: Vec<u64> =
            std::iter::from_fn(|| q.pop().map(|(at, _)| at.as_micros() / 1000)).collect();
        assert_eq!(popped, sorted);
    }

    #[test]
    fn same_instant_fifo_holds_across_the_far_heap() {
        // Events at one far instant, pushed around near events: after
        // cascading they must still pop in push order.
        let mut q = EventQueue::new();
        let far = SimTime::from_secs(10);
        q.push(far, 0);
        q.push(SimTime::from_millis(1), 100);
        q.push(far, 1);
        q.push(far, 2);
        assert_eq!(q.pop(), Some((SimTime::from_millis(1), 100)));
        assert_eq!(q.pop(), Some((far, 0)));
        assert_eq!(q.pop(), Some((far, 1)));
        assert_eq!(q.pop(), Some((far, 2)));
    }

    #[test]
    fn past_time_pushes_pop_before_later_pending_events() {
        let mut q = EventQueue::new();
        q.push(SimTime::from_secs(2), "late");
        // Advance the wheel base to ~2 s by peeking.
        assert_eq!(q.peek_time(), Some(SimTime::from_secs(2)));
        // Now schedule something earlier than the base: it must pop first.
        q.push(SimTime::from_millis(10), "early");
        assert_eq!(q.pop(), Some((SimTime::from_millis(10), "early")));
        assert_eq!(q.pop(), Some((SimTime::from_secs(2), "late")));
    }

    #[test]
    fn custom_granularity_keeps_order_on_finer_grids() {
        let mut q = EventQueue::with_granularity(SimDuration::from_micros(2_500));
        for i in (0..50).rev() {
            q.push(SimTime::from_micros(i * 2_500), i);
        }
        for i in 0..50 {
            assert_eq!(q.pop().unwrap().1, i);
        }
    }

    #[test]
    fn cancel_reclaims_the_payload_slot_eagerly() {
        use std::cell::Cell;
        use std::rc::Rc;

        struct DropFlag(Rc<Cell<u32>>);
        impl Drop for DropFlag {
            fn drop(&mut self) {
                self.0.set(self.0.get() + 1);
            }
        }

        let drops = Rc::new(Cell::new(0));
        let mut q = EventQueue::new();
        let token = q.push_cancellable(SimTime::from_secs(100), DropFlag(Rc::clone(&drops)));
        assert_eq!(drops.get(), 0);
        assert!(q.cancel(token));
        assert_eq!(drops.get(), 1, "cancel must drop the payload immediately, not at pop");
    }

    #[test]
    fn push_cancel_churn_keeps_physical_occupancy_bounded() {
        let mut q = EventQueue::new();
        // Anchor events so the queue is never empty, near and far.
        q.push(SimTime::from_millis(1), 0);
        q.push(SimTime::from_secs(3_600), 1);
        let mut worst = 0;
        for i in 0..100_000u64 {
            // Alternate near-window and far-heap targets.
            let at = if i % 2 == 0 {
                SimTime::from_millis(5 + i % 300)
            } else {
                SimTime::from_secs(60 + i % 600)
            };
            let token = q.push_cancellable(at, 2);
            assert!(q.cancel(token));
            worst = worst.max(q.physical_occupancy());
        }
        assert_eq!(q.len(), 2);
        assert!(
            worst <= 4096,
            "cancelled residue must be compacted away, peaked at {worst} physical entries"
        );
        assert!(q.physical_occupancy() <= 4096);
    }

    /// Reference model: the straightforward sorted list the wheel must be
    /// observationally identical to.
    struct RefQueue<T> {
        entries: Vec<(SimTime, u64, Option<T>)>,
        next_seq: u64,
    }

    impl<T> RefQueue<T> {
        fn new() -> Self {
            RefQueue { entries: Vec::new(), next_seq: 0 }
        }

        fn push(&mut self, at: SimTime, event: T) -> u64 {
            let seq = self.next_seq;
            self.next_seq += 1;
            self.entries.push((at, seq, Some(event)));
            seq
        }

        fn cancel(&mut self, seq: u64) -> bool {
            match self.entries.iter_mut().find(|(_, s, e)| *s == seq && e.is_some()) {
                Some((_, _, e)) => {
                    *e = None;
                    true
                }
                None => false,
            }
        }

        fn min_index(&self) -> Option<usize> {
            self.entries
                .iter()
                .enumerate()
                .filter(|(_, (_, _, e))| e.is_some())
                .min_by_key(|(_, (at, seq, _))| (*at, *seq))
                .map(|(i, _)| i)
        }

        fn pop(&mut self) -> Option<(SimTime, T)> {
            let i = self.min_index()?;
            let (at, _, event) = self.entries.remove(i);
            Some((at, event.expect("filtered")))
        }

        fn peek_time(&self) -> Option<SimTime> {
            self.min_index().map(|i| self.entries[i].0)
        }

        fn len(&self) -> usize {
            self.entries.iter().filter(|(_, _, e)| e.is_some()).count()
        }
    }

    /// Splitmix64: a tiny deterministic generator for the property test
    /// (seeded, no ambient randomness).
    fn splitmix(state: &mut u64) -> u64 {
        *state = state.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = *state;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }

    #[test]
    fn wheel_matches_reference_heap_on_random_interleavings() {
        for seed in 0..8u64 {
            let mut rng = seed.wrapping_mul(0x0123_4567_89AB_CDEF) ^ 0xDEAD_BEEF;
            let mut wheel: EventQueue<u64> = EventQueue::with_granularity(
                SimDuration::from_micros([1, 250, 5_000, 1_000_000][(seed % 4) as usize]),
            );
            let mut reference: RefQueue<u64> = RefQueue::new();
            // Token pairs for cancellable pushes still outstanding.
            let mut tokens: Vec<(EventToken, u64)> = Vec::new();
            let mut payload = 0u64;
            // `now` only advances, mimicking a simulation clock, but
            // pushes may land before it (the past-push clamp path).
            let mut now = SimTime::ZERO;
            for _ in 0..4_000 {
                match splitmix(&mut rng) % 10 {
                    // Push: mixed near/far/past instants.
                    0..=3 => {
                        let at = now + SimDuration::from_micros(splitmix(&mut rng) % 2_000_000);
                        wheel.push(at, payload);
                        reference.push(at, payload);
                        payload += 1;
                    }
                    4..=5 => {
                        let at = now + SimDuration::from_micros(splitmix(&mut rng) % 2_000_000);
                        let t = wheel.push_cancellable(at, payload);
                        let seq = reference.push(at, payload);
                        tokens.push((t, seq));
                        payload += 1;
                    }
                    6 => {
                        if !tokens.is_empty() {
                            let i = (splitmix(&mut rng) as usize) % tokens.len();
                            let (t, seq) = tokens.swap_remove(i);
                            assert_eq!(wheel.cancel(t), reference.cancel(seq));
                        }
                    }
                    7..=8 => {
                        let got = wheel.pop();
                        let want = reference.pop();
                        assert_eq!(got, want, "pop diverged (seed {seed})");
                        if let Some((at, _)) = got {
                            now = now.max(at);
                        }
                    }
                    _ => {
                        assert_eq!(wheel.peek_time(), reference.peek_time());
                        let due = now + SimDuration::from_micros(splitmix(&mut rng) % 400_000);
                        let want = if reference.peek_time().is_some_and(|t| t <= due) {
                            reference.pop()
                        } else {
                            None
                        };
                        assert_eq!(wheel.pop_due(due), want, "pop_due diverged (seed {seed})");
                    }
                }
                assert_eq!(wheel.len(), reference.len(), "len diverged (seed {seed})");
            }
            // Drain: the full remaining order must match.
            loop {
                let got = wheel.pop();
                let want = reference.pop();
                assert_eq!(got, want, "drain diverged (seed {seed})");
                if got.is_none() {
                    break;
                }
            }
        }
    }

    // ------------------------------------------------------------------
    // Horizon-boundary hardening: pushes aimed exactly at
    // `base_tick + SLOTS` (the near/far frontier) and cancels landing
    // mid-cascade.
    // ------------------------------------------------------------------

    /// An instant landing on the given absolute tick of `q`'s grid.
    fn at_tick<T>(q: &EventQueue<T>, tick: u64) -> SimTime {
        SimTime::from_micros(tick * q.granularity)
    }

    #[test]
    fn pop_with_seq_reports_the_push_counter() {
        let mut q = EventQueue::new();
        q.push(SimTime::from_millis(2), 'b');
        q.push(SimTime::from_millis(1), 'a');
        let t = q.push_cancellable(SimTime::from_millis(3), 'c');
        assert!(q.cancel(t));
        assert_eq!(q.pop_with_seq(), Some((SimTime::from_millis(1), 1, 'a')));
        assert_eq!(
            q.pop_due_with_seq(SimTime::from_millis(2)),
            Some((SimTime::from_millis(2), 0, 'b'))
        );
        assert_eq!(q.pop_with_seq(), None);
    }

    #[test]
    fn pushes_exactly_at_the_wheel_horizon_pop_in_order() {
        let mut q = EventQueue::new();
        // Anchor so the base advances off zero deterministically.
        q.push(at_tick(&q, 1), 0u64);
        assert_eq!(q.peek_time(), Some(at_tick(&q, 1)));
        let horizon = q.base_tick + SLOTS as u64;
        // One event on each side of the frontier: the last in-window
        // tick, exactly at the horizon (routed far), and one past it.
        q.push(at_tick(&q, horizon - 1), 1);
        q.push(at_tick(&q, horizon), 2);
        q.push(at_tick(&q, horizon + 1), 3);
        // Same-instant FIFO across the frontier: a second push at the
        // horizon instant must pop after the first.
        q.push(at_tick(&q, horizon), 4);
        let order: Vec<u64> = std::iter::from_fn(|| q.pop().map(|(_, e)| e)).collect();
        assert_eq!(order, [0, 1, 2, 4, 3]);
    }

    #[test]
    fn cancel_at_the_horizon_survives_the_cascade() {
        let mut q = EventQueue::new();
        q.push(at_tick(&q, 1), 0u64);
        assert_eq!(q.peek_time(), Some(at_tick(&q, 1)));
        let horizon = q.base_tick + SLOTS as u64;
        // Far entries parked exactly at the frontier: one cancelled while
        // still in the far heap, one cancelled only after it cascades.
        let pre = q.push_cancellable(at_tick(&q, horizon), 1);
        let post = q.push_cancellable(at_tick(&q, horizon), 2);
        q.push(at_tick(&q, horizon), 3);
        assert!(q.cancel(pre));
        assert_eq!(q.pop(), Some((at_tick(&q, 1), 0)));
        // Settling here advances the base and cascades the frontier in.
        assert_eq!(q.peek_time(), Some(at_tick(&q, horizon)));
        assert!(q.cancel(post), "a cascaded entry's token must still cancel it");
        assert_eq!(q.pop(), Some((at_tick(&q, horizon), 3)));
        assert_eq!(q.pop(), None);
    }

    /// Differential churn aimed at the live `base_tick + SLOTS` frontier:
    /// every push lands within ±2 ticks of the near/far comparison, pops
    /// land exactly on the horizon instant, and cancels hit entries on
    /// both sides mid-flight. Any off-by-one in the insert routing, the
    /// cascade limit, or the rebase shows up as an order or len
    /// divergence from the reference heap.
    #[test]
    fn boundary_straddling_churn_matches_the_reference_heap() {
        for seed in 0..8u64 {
            let mut rng = seed.wrapping_mul(0x9E37_79B9) ^ 0x5EED;
            let mut wheel: EventQueue<u64> = EventQueue::with_granularity(
                SimDuration::from_micros([1, 250, 5_000][(seed % 3) as usize]),
            );
            let mut reference: RefQueue<u64> = RefQueue::new();
            let mut tokens: Vec<(EventToken, u64)> = Vec::new();
            let mut payload = 0u64;
            for _ in 0..6_000 {
                match splitmix(&mut rng) % 10 {
                    0..=4 => {
                        let horizon = wheel.base_tick + SLOTS as u64;
                        let tick = (horizon + splitmix(&mut rng) % 5).saturating_sub(2);
                        let at = at_tick(&wheel, tick);
                        let t = wheel.push_cancellable(at, payload);
                        let seq = reference.push(at, payload);
                        tokens.push((t, seq));
                        payload += 1;
                    }
                    5 => {
                        // Same-instant duplicates exactly at the horizon.
                        let at = at_tick(&wheel, wheel.base_tick + SLOTS as u64);
                        wheel.push(at, payload);
                        reference.push(at, payload);
                        payload += 1;
                    }
                    6..=7 => {
                        if !tokens.is_empty() {
                            let i = (splitmix(&mut rng) as usize) % tokens.len();
                            let (t, seq) = tokens.swap_remove(i);
                            assert_eq!(wheel.cancel(t), reference.cancel(seq));
                        }
                    }
                    8 => {
                        assert_eq!(wheel.pop(), reference.pop(), "pop diverged (seed {seed})");
                    }
                    _ => {
                        // pop_due exactly at the horizon instant forces
                        // settle → base advance → cascade with frontier
                        // entries in flight.
                        let due = at_tick(&wheel, wheel.base_tick + SLOTS as u64);
                        let want = if reference.peek_time().is_some_and(|t| t <= due) {
                            reference.pop()
                        } else {
                            None
                        };
                        assert_eq!(wheel.pop_due(due), want, "pop_due diverged (seed {seed})");
                    }
                }
                assert_eq!(wheel.len(), reference.len(), "len diverged (seed {seed})");
            }
            loop {
                let got = wheel.pop();
                let want = reference.pop();
                assert_eq!(got, want, "drain diverged (seed {seed})");
                if got.is_none() {
                    break;
                }
            }
        }
    }
}

//! A stable-ordered future event list.

use std::cmp::Ordering;
use std::collections::BinaryHeap;

use crate::SimTime;

/// A min-ordered queue of `(SimTime, T)` events.
///
/// Events scheduled for the same instant pop in insertion order, which keeps
/// simulations deterministic regardless of heap internals.
///
/// # Examples
///
/// ```
/// use dilu_sim::{EventQueue, SimTime};
///
/// let mut q = EventQueue::new();
/// q.push(SimTime::from_millis(3), 'b');
/// q.push(SimTime::from_millis(3), 'c');
/// q.push(SimTime::from_millis(1), 'a');
/// let order: Vec<char> = std::iter::from_fn(|| q.pop().map(|(_, e)| e)).collect();
/// assert_eq!(order, ['a', 'b', 'c']);
/// ```
#[derive(Debug, Clone)]
pub struct EventQueue<T> {
    heap: BinaryHeap<Entry<T>>,
    next_seq: u64,
}

#[derive(Debug, Clone)]
struct Entry<T> {
    at: SimTime,
    seq: u64,
    event: T,
}

impl<T> PartialEq for Entry<T> {
    fn eq(&self, other: &Self) -> bool {
        self.at == other.at && self.seq == other.seq
    }
}

impl<T> Eq for Entry<T> {}

impl<T> PartialOrd for Entry<T> {
    fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
        Some(self.cmp(other))
    }
}

impl<T> Ord for Entry<T> {
    fn cmp(&self, other: &Self) -> Ordering {
        // BinaryHeap is a max-heap: reverse to pop the earliest (time, seq).
        (other.at, other.seq).cmp(&(self.at, self.seq))
    }
}

impl<T> EventQueue<T> {
    /// Creates an empty queue.
    pub fn new() -> Self {
        EventQueue { heap: BinaryHeap::new(), next_seq: 0 }
    }

    /// Schedules `event` to fire at `at`.
    pub fn push(&mut self, at: SimTime, event: T) {
        let seq = self.next_seq;
        self.next_seq += 1;
        self.heap.push(Entry { at, seq, event });
    }

    /// Removes and returns the earliest event, or `None` if empty.
    pub fn pop(&mut self) -> Option<(SimTime, T)> {
        self.heap.pop().map(|e| (e.at, e.event))
    }

    /// The instant of the earliest pending event, if any.
    pub fn peek_time(&self) -> Option<SimTime> {
        self.heap.peek().map(|e| e.at)
    }

    /// Removes and returns the earliest event only if it fires at or before
    /// `now`.
    pub fn pop_due(&mut self, now: SimTime) -> Option<(SimTime, T)> {
        if self.peek_time().is_some_and(|t| t <= now) {
            self.pop()
        } else {
            None
        }
    }

    /// The number of pending events.
    pub fn len(&self) -> usize {
        self.heap.len()
    }

    /// `true` if no events are pending.
    pub fn is_empty(&self) -> bool {
        self.heap.is_empty()
    }
}

impl<T> Default for EventQueue<T> {
    fn default() -> Self {
        EventQueue::new()
    }
}

impl<T> Extend<(SimTime, T)> for EventQueue<T> {
    fn extend<I: IntoIterator<Item = (SimTime, T)>>(&mut self, iter: I) {
        for (at, event) in iter {
            self.push(at, event);
        }
    }
}

impl<T> FromIterator<(SimTime, T)> for EventQueue<T> {
    fn from_iter<I: IntoIterator<Item = (SimTime, T)>>(iter: I) -> Self {
        let mut q = EventQueue::new();
        q.extend(iter);
        q
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn pops_in_time_order() {
        let mut q = EventQueue::new();
        q.push(SimTime::from_millis(30), 3);
        q.push(SimTime::from_millis(10), 1);
        q.push(SimTime::from_millis(20), 2);
        assert_eq!(q.pop(), Some((SimTime::from_millis(10), 1)));
        assert_eq!(q.pop(), Some((SimTime::from_millis(20), 2)));
        assert_eq!(q.pop(), Some((SimTime::from_millis(30), 3)));
        assert_eq!(q.pop(), None);
    }

    #[test]
    fn ties_pop_in_insertion_order() {
        let mut q = EventQueue::new();
        for i in 0..100 {
            q.push(SimTime::from_millis(7), i);
        }
        for i in 0..100 {
            assert_eq!(q.pop().unwrap().1, i);
        }
    }

    #[test]
    fn pop_due_respects_now() {
        let mut q = EventQueue::new();
        q.push(SimTime::from_millis(10), "later");
        assert_eq!(q.pop_due(SimTime::from_millis(9)), None);
        assert_eq!(q.pop_due(SimTime::from_millis(10)), Some((SimTime::from_millis(10), "later")));
        assert!(q.is_empty());
    }

    #[test]
    fn collects_from_iterator() {
        let q: EventQueue<u8> = (0u8..5).map(|i| (SimTime::from_millis(u64::from(i)), i)).collect();
        assert_eq!(q.len(), 5);
        assert_eq!(q.peek_time(), Some(SimTime::ZERO));
    }
}

//! Simulated-time newtypes.

use std::fmt;
use std::iter::Sum;
use std::ops::{Add, AddAssign, Div, Mul, Sub, SubAssign};

use serde::{Deserialize, Serialize};

/// An absolute instant on the simulated clock, in microseconds since the
/// start of the simulation.
///
/// `SimTime` is a newtype over `u64` so that instants can never be confused
/// with durations or raw counters (C-NEWTYPE).
///
/// # Examples
///
/// ```
/// use dilu_sim::{SimDuration, SimTime};
///
/// let t = SimTime::ZERO + SimDuration::from_secs(2);
/// assert_eq!(t.as_millis(), 2_000);
/// ```
#[derive(
    Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default, Serialize, Deserialize,
)]
pub struct SimTime(u64);

/// A span of simulated time, in microseconds.
///
/// # Examples
///
/// ```
/// use dilu_sim::SimDuration;
///
/// let quantum = SimDuration::from_millis(5);
/// assert_eq!(quantum * 3, SimDuration::from_millis(15));
/// ```
#[derive(
    Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default, Serialize, Deserialize,
)]
pub struct SimDuration(u64);

impl SimTime {
    /// The origin of simulated time.
    pub const ZERO: SimTime = SimTime(0);

    /// A time later than any reachable in practice; useful as a sentinel.
    pub const MAX: SimTime = SimTime(u64::MAX);

    /// Creates an instant from whole microseconds.
    pub const fn from_micros(us: u64) -> Self {
        SimTime(us)
    }

    /// Creates an instant from whole milliseconds.
    pub const fn from_millis(ms: u64) -> Self {
        SimTime(ms * 1_000)
    }

    /// Creates an instant from whole seconds.
    pub const fn from_secs(s: u64) -> Self {
        SimTime(s * 1_000_000)
    }

    /// Creates an instant from fractional seconds, rounding to microseconds.
    ///
    /// # Panics
    ///
    /// Panics if `s` is negative or not finite.
    pub fn from_secs_f64(s: f64) -> Self {
        assert!(s.is_finite() && s >= 0.0, "invalid simulated time {s}");
        SimTime((s * 1e6).round() as u64)
    }

    /// This instant as whole microseconds.
    pub const fn as_micros(self) -> u64 {
        self.0
    }

    /// This instant as whole milliseconds (truncating).
    pub const fn as_millis(self) -> u64 {
        self.0 / 1_000
    }

    /// This instant as whole seconds (truncating).
    pub const fn as_secs(self) -> u64 {
        self.0 / 1_000_000
    }

    /// This instant as fractional seconds.
    pub fn as_secs_f64(self) -> f64 {
        self.0 as f64 / 1e6
    }

    /// The duration since `earlier`, saturating to zero if `earlier` is later.
    pub fn saturating_since(self, earlier: SimTime) -> SimDuration {
        SimDuration(self.0.saturating_sub(earlier.0))
    }

    /// Advances this instant by `d`, saturating at [`SimTime::MAX`].
    pub fn saturating_add(self, d: SimDuration) -> SimTime {
        SimTime(self.0.saturating_add(d.0))
    }
}

impl SimDuration {
    /// The zero-length duration.
    pub const ZERO: SimDuration = SimDuration(0);

    /// Creates a duration from whole microseconds.
    pub const fn from_micros(us: u64) -> Self {
        SimDuration(us)
    }

    /// Creates a duration from whole milliseconds.
    pub const fn from_millis(ms: u64) -> Self {
        SimDuration(ms * 1_000)
    }

    /// Creates a duration from whole seconds.
    pub const fn from_secs(s: u64) -> Self {
        SimDuration(s * 1_000_000)
    }

    /// Creates a duration from fractional seconds, rounding to microseconds.
    ///
    /// # Panics
    ///
    /// Panics if `s` is negative or not finite.
    pub fn from_secs_f64(s: f64) -> Self {
        assert!(s.is_finite() && s >= 0.0, "invalid simulated duration {s}");
        SimDuration((s * 1e6).round() as u64)
    }

    /// Creates a duration from fractional milliseconds, rounding to microseconds.
    ///
    /// # Panics
    ///
    /// Panics if `ms` is negative or not finite.
    pub fn from_millis_f64(ms: f64) -> Self {
        assert!(ms.is_finite() && ms >= 0.0, "invalid simulated duration {ms}ms");
        SimDuration((ms * 1e3).round() as u64)
    }

    /// This duration as whole microseconds.
    pub const fn as_micros(self) -> u64 {
        self.0
    }

    /// This duration as whole milliseconds (truncating).
    pub const fn as_millis(self) -> u64 {
        self.0 / 1_000
    }

    /// This duration as fractional milliseconds.
    pub fn as_millis_f64(self) -> f64 {
        self.0 as f64 / 1e3
    }

    /// This duration as whole seconds (truncating).
    pub const fn as_secs(self) -> u64 {
        self.0 / 1_000_000
    }

    /// This duration as fractional seconds.
    pub fn as_secs_f64(self) -> f64 {
        self.0 as f64 / 1e6
    }

    /// `true` if this duration is zero.
    pub const fn is_zero(self) -> bool {
        self.0 == 0
    }

    /// Scales this duration by `factor`, rounding to microseconds.
    ///
    /// # Panics
    ///
    /// Panics if `factor` is negative or not finite.
    pub fn mul_f64(self, factor: f64) -> SimDuration {
        assert!(factor.is_finite() && factor >= 0.0, "invalid scale {factor}");
        SimDuration((self.0 as f64 * factor).round() as u64)
    }

    /// The ratio of this duration to `other`.
    ///
    /// Returns `f64::INFINITY` when `other` is zero and `self` is not, and
    /// `0.0` when both are zero.
    pub fn ratio(self, other: SimDuration) -> f64 {
        if other.0 == 0 {
            if self.0 == 0 {
                0.0
            } else {
                f64::INFINITY
            }
        } else {
            self.0 as f64 / other.0 as f64
        }
    }
}

impl Add<SimDuration> for SimTime {
    type Output = SimTime;

    fn add(self, rhs: SimDuration) -> SimTime {
        SimTime(self.0 + rhs.0)
    }
}

impl AddAssign<SimDuration> for SimTime {
    fn add_assign(&mut self, rhs: SimDuration) {
        self.0 += rhs.0;
    }
}

impl Sub<SimDuration> for SimTime {
    type Output = SimTime;

    fn sub(self, rhs: SimDuration) -> SimTime {
        SimTime(self.0 - rhs.0)
    }
}

impl Sub<SimTime> for SimTime {
    type Output = SimDuration;

    /// # Panics
    ///
    /// Panics in debug builds if `rhs` is later than `self`; use
    /// [`SimTime::saturating_since`] when ordering is not guaranteed.
    fn sub(self, rhs: SimTime) -> SimDuration {
        SimDuration(self.0 - rhs.0)
    }
}

impl Add for SimDuration {
    type Output = SimDuration;

    fn add(self, rhs: SimDuration) -> SimDuration {
        SimDuration(self.0 + rhs.0)
    }
}

impl AddAssign for SimDuration {
    fn add_assign(&mut self, rhs: SimDuration) {
        self.0 += rhs.0;
    }
}

impl Sub for SimDuration {
    type Output = SimDuration;

    fn sub(self, rhs: SimDuration) -> SimDuration {
        SimDuration(self.0 - rhs.0)
    }
}

impl SubAssign for SimDuration {
    fn sub_assign(&mut self, rhs: SimDuration) {
        self.0 -= rhs.0;
    }
}

impl Mul<u64> for SimDuration {
    type Output = SimDuration;

    fn mul(self, rhs: u64) -> SimDuration {
        SimDuration(self.0 * rhs)
    }
}

impl Div<u64> for SimDuration {
    type Output = SimDuration;

    fn div(self, rhs: u64) -> SimDuration {
        SimDuration(self.0 / rhs)
    }
}

impl Sum for SimDuration {
    fn sum<I: Iterator<Item = SimDuration>>(iter: I) -> SimDuration {
        iter.fold(SimDuration::ZERO, Add::add)
    }
}

impl fmt::Display for SimTime {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{:.3}s", self.as_secs_f64())
    }
}

impl fmt::Display for SimDuration {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if self.0 < 1_000 {
            write!(f, "{}us", self.0)
        } else if self.0 < 1_000_000 {
            write!(f, "{:.2}ms", self.as_millis_f64())
        } else {
            write!(f, "{:.3}s", self.as_secs_f64())
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn constructors_agree_on_units() {
        assert_eq!(SimTime::from_secs(3), SimTime::from_millis(3_000));
        assert_eq!(SimTime::from_millis(3), SimTime::from_micros(3_000));
        assert_eq!(SimDuration::from_secs(1), SimDuration::from_micros(1_000_000));
        assert_eq!(SimDuration::from_millis_f64(1.5), SimDuration::from_micros(1_500));
    }

    #[test]
    fn time_arithmetic_roundtrips() {
        let a = SimTime::from_millis(10);
        let b = SimTime::from_millis(25);
        assert_eq!(b - a, SimDuration::from_millis(15));
        assert_eq!(a + (b - a), b);
    }

    #[test]
    fn saturating_since_clamps_to_zero() {
        let a = SimTime::from_millis(10);
        let b = SimTime::from_millis(25);
        assert_eq!(a.saturating_since(b), SimDuration::ZERO);
        assert_eq!(b.saturating_since(a), SimDuration::from_millis(15));
    }

    #[test]
    fn duration_ratio_handles_zero() {
        let z = SimDuration::ZERO;
        let d = SimDuration::from_millis(5);
        assert_eq!(d.ratio(z), f64::INFINITY);
        assert_eq!(z.ratio(z), 0.0);
        assert!((d.ratio(SimDuration::from_millis(10)) - 0.5).abs() < 1e-12);
    }

    #[test]
    fn fractional_constructors_round() {
        assert_eq!(SimTime::from_secs_f64(0.0000015), SimTime::from_micros(2));
        assert_eq!(SimDuration::from_secs_f64(1.25), SimDuration::from_millis(1250));
    }

    #[test]
    fn mul_f64_scales() {
        let d = SimDuration::from_millis(10);
        assert_eq!(d.mul_f64(2.5), SimDuration::from_millis(25));
        assert_eq!(d.mul_f64(0.0), SimDuration::ZERO);
    }

    #[test]
    fn display_is_nonempty_and_scaled() {
        assert_eq!(format!("{}", SimDuration::from_micros(12)), "12us");
        assert_eq!(format!("{}", SimDuration::from_millis(12)), "12.00ms");
        assert_eq!(format!("{}", SimDuration::from_secs(12)), "12.000s");
        assert_eq!(format!("{}", SimTime::from_millis(1500)), "1.500s");
    }

    #[test]
    fn sum_of_durations() {
        let total: SimDuration = (1..=4).map(SimDuration::from_millis).sum();
        assert_eq!(total, SimDuration::from_millis(10));
    }
}

//! Deterministic discrete-event simulation core for the Dilu reproduction.
//!
//! Everything in this workspace runs on simulated time: [`SimTime`] and
//! [`SimDuration`] are integer-microsecond newtypes, [`EventQueue`] is a
//! stable-ordered future event list, and [`rng`] provides seeded,
//! stream-splittable random number generators so that every experiment is
//! reproducible from a single seed.
//!
//! # Examples
//!
//! ```
//! use dilu_sim::{EventQueue, SimDuration, SimTime};
//!
//! let mut queue = EventQueue::new();
//! queue.push(SimTime::from_millis(5), "token cycle");
//! queue.push(SimTime::from_millis(1), "request arrival");
//! let (when, what) = queue.pop().unwrap();
//! assert_eq!(when, SimTime::from_millis(1));
//! assert_eq!(what, "request arrival");
//! assert_eq!(when + SimDuration::from_millis(4), SimTime::from_millis(5));
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod events;
mod time;

pub mod rng;

pub use events::{EventQueue, EventToken};
pub use time::{SimDuration, SimTime};

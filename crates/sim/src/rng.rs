//! Seeded, stream-splittable random number generation.
//!
//! Every stochastic component of the simulation derives its generator from a
//! single experiment seed via [`component_rng`], so two components never
//! consume from the same stream and results are bit-reproducible.

use rand::{Rng, SeedableRng};
use rand_chacha::ChaCha8Rng;

/// The RNG type used throughout the workspace.
pub type SimRng = ChaCha8Rng;

/// Derives an independent generator for a named component from a root seed.
///
/// The same `(seed, component)` pair always yields the same stream, and
/// distinct components yield statistically independent streams.
///
/// # Examples
///
/// ```
/// use dilu_sim::rng::component_rng;
/// use rand::Rng;
///
/// let mut a = component_rng(42, "arrivals");
/// let mut b = component_rng(42, "arrivals");
/// assert_eq!(a.gen::<u64>(), b.gen::<u64>());
/// ```
pub fn component_rng(seed: u64, component: &str) -> SimRng {
    let mut key = [0u8; 32];
    key[..8].copy_from_slice(&seed.to_le_bytes());
    let h = fnv1a(component.as_bytes());
    key[8..16].copy_from_slice(&h.to_le_bytes());
    key[16..24].copy_from_slice(&h.rotate_left(17).to_le_bytes());
    SimRng::from_seed(key)
}

/// Samples an exponentially distributed inter-arrival gap with the given
/// `rate` (events per unit time), in the same unit as the returned value.
///
/// # Panics
///
/// Panics if `rate` is not strictly positive and finite.
pub fn sample_exponential<R: Rng + ?Sized>(rng: &mut R, rate: f64) -> f64 {
    assert!(rate.is_finite() && rate > 0.0, "rate must be positive, got {rate}");
    let u: f64 = rng.gen_range(f64::EPSILON..1.0);
    -u.ln() / rate
}

/// Samples a Gamma(shape, scale) variate via Marsaglia–Tsang, with boosting
/// for `shape < 1`.
///
/// # Panics
///
/// Panics if `shape` or `scale` is not strictly positive and finite.
pub fn sample_gamma<R: Rng + ?Sized>(rng: &mut R, shape: f64, scale: f64) -> f64 {
    assert!(shape.is_finite() && shape > 0.0, "shape must be positive, got {shape}");
    assert!(scale.is_finite() && scale > 0.0, "scale must be positive, got {scale}");
    if shape < 1.0 {
        // Boost: Gamma(a) = Gamma(a + 1) * U^(1/a).
        let u: f64 = rng.gen_range(f64::EPSILON..1.0);
        return sample_gamma(rng, shape + 1.0, scale) * u.powf(1.0 / shape);
    }
    let d = shape - 1.0 / 3.0;
    let c = 1.0 / (9.0 * d).sqrt();
    loop {
        let x = sample_standard_normal(rng);
        let v = (1.0 + c * x).powi(3);
        if v <= 0.0 {
            continue;
        }
        let u: f64 = rng.gen_range(f64::EPSILON..1.0);
        if u.ln() < 0.5 * x * x + d - d * v + d * v.ln() {
            return d * v * scale;
        }
    }
}

/// Samples a standard normal variate via Box–Muller.
pub fn sample_standard_normal<R: Rng + ?Sized>(rng: &mut R) -> f64 {
    let u1: f64 = rng.gen_range(f64::EPSILON..1.0);
    let u2: f64 = rng.gen_range(0.0..1.0);
    (-2.0 * u1.ln()).sqrt() * (std::f64::consts::TAU * u2).cos()
}

fn fnv1a(bytes: &[u8]) -> u64 {
    let mut hash: u64 = 0xcbf2_9ce4_8422_2325;
    for &b in bytes {
        hash ^= u64::from(b);
        hash = hash.wrapping_mul(0x0000_0100_0000_01b3);
    }
    hash
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn component_streams_are_reproducible_and_distinct() {
        let mut a1 = component_rng(7, "a");
        let mut a2 = component_rng(7, "a");
        let mut b = component_rng(7, "b");
        let xs1: Vec<u64> = (0..8).map(|_| a1.gen()).collect();
        let xs2: Vec<u64> = (0..8).map(|_| a2.gen()).collect();
        let ys: Vec<u64> = (0..8).map(|_| b.gen()).collect();
        assert_eq!(xs1, xs2);
        assert_ne!(xs1, ys);
    }

    #[test]
    fn different_seeds_differ() {
        let mut a = component_rng(1, "x");
        let mut b = component_rng(2, "x");
        let xs: Vec<u64> = (0..8).map(|_| a.gen()).collect();
        let ys: Vec<u64> = (0..8).map(|_| b.gen()).collect();
        assert_ne!(xs, ys);
    }

    #[test]
    fn exponential_mean_matches_rate() {
        let mut rng = component_rng(11, "exp");
        let rate = 4.0;
        let n = 40_000;
        let mean: f64 = (0..n).map(|_| sample_exponential(&mut rng, rate)).sum::<f64>() / n as f64;
        assert!((mean - 1.0 / rate).abs() < 0.01, "mean {mean}");
    }

    #[test]
    fn gamma_moments_match() {
        let mut rng = component_rng(13, "gamma");
        let (shape, scale) = (4.0, 0.5);
        let n = 40_000;
        let xs: Vec<f64> = (0..n).map(|_| sample_gamma(&mut rng, shape, scale)).collect();
        let mean = xs.iter().sum::<f64>() / n as f64;
        let var = xs.iter().map(|x| (x - mean).powi(2)).sum::<f64>() / n as f64;
        assert!((mean - shape * scale).abs() < 0.05, "mean {mean}");
        assert!((var - shape * scale * scale).abs() < 0.1, "var {var}");
    }

    #[test]
    fn gamma_low_shape_is_positive() {
        let mut rng = component_rng(17, "gamma-low");
        for _ in 0..1_000 {
            assert!(sample_gamma(&mut rng, 0.2, 1.0) > 0.0);
        }
    }

    #[test]
    fn normal_moments_match() {
        let mut rng = component_rng(19, "normal");
        let n = 40_000;
        let xs: Vec<f64> = (0..n).map(|_| sample_standard_normal(&mut rng)).collect();
        let mean = xs.iter().sum::<f64>() / n as f64;
        let var = xs.iter().map(|x| (x - mean).powi(2)).sum::<f64>() / n as f64;
        assert!(mean.abs() < 0.02, "mean {mean}");
        assert!((var - 1.0).abs() < 0.05, "var {var}");
    }
}
